//! The exploration drivers: Q-method, P-method, and a random-walk
//! ablation (§5.1, §6.5).
//!
//! All three share one loop — evaluate seeds, then repeatedly (a) pick
//! starting points from `H` with the simulated-annealing rule and (b) move
//! each along direction(s) — and differ only in *how directions are
//! chosen*:
//!
//! * **Q-method** — query the Q-network for the single best direction per
//!   starting point (the paper's contribution);
//! * **P-method** — try *every* applicable direction of every starting
//!   point (the exhaustive-neighborhood baseline of §6.5);
//! * **RandomWalk** — one uniformly random applicable direction
//!   (an ablation isolating the value of learned direction choice).
//!
//! Exploration-*time* accounting models the real system's measurement
//! cost: each evaluated point costs `measure_overhead_s` (compile + launch,
//! ≤ 1 s per §5.2) plus a few timed repetitions of the kernel.
//!
//! Candidate evaluation is *batched*: each trial first builds its full
//! candidate list (all starts, all chosen directions), then hands it to an
//! [`EvalPool`], which fans fresh points out over
//! `eval_workers` threads and answers repeats from a memo cache. Results
//! reduce in fixed candidate order, so the search is bit-for-bit
//! deterministic in the worker count; only wall-clock time changes.

use std::time::Instant;

use flextensor_ir::graph::Graph;
use flextensor_schedule::config::NodeConfig;
use flextensor_sim::model::{Cost, Evaluator};
use flextensor_telemetry::{config_key, Telemetry, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pool::{EvalOutcome, EvalPool, EvalStats};
use crate::qlearn::{QAgent, Transition};
use crate::sa::History;
use crate::space::Space;

/// Direction-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Q-learning guided single direction per start (the paper's method).
    QMethod,
    /// All applicable directions per start (§6.5's P-method).
    PMethod,
    /// One random applicable direction per start (ablation).
    RandomWalk,
}

impl Method {
    /// The stable lower-case name used in trace records (the `method`
    /// field of [`TraceEvent::RunStarted`]); replay keys its best-cost
    /// fold on it.
    pub fn slug(&self) -> &'static str {
        match self {
            Method::QMethod => "q-method",
            Method::PMethod => "p-method",
            Method::RandomWalk => "random-walk",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Method::QMethod => "Q-method",
            Method::PMethod => "P-method",
            Method::RandomWalk => "random-walk",
        };
        f.write_str(s)
    }
}

/// Exploration hyperparameters.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Number of exploration trials (steps).
    pub trials: usize,
    /// Starting points selected per trial (user-settable per §5.1).
    pub starts: usize,
    /// SA temperature γ.
    pub gamma: f64,
    /// Random seeds sampled before exploration begins.
    pub initial_samples: usize,
    /// RNG seed (everything is deterministic given this).
    pub seed: u64,
    /// Modeled compile+measure overhead per on-device evaluation, seconds.
    pub measure_overhead_s: f64,
    /// Kernel repetitions per measurement.
    pub measure_repeats: u32,
    /// Stop early once the best time reaches this many seconds.
    pub stop_when_seconds: Option<f64>,
    /// Evaluation worker threads per candidate batch (1 = serial on the
    /// calling thread, 0 = all available cores). Results are identical
    /// for every value; only wall-clock time changes.
    pub eval_workers: usize,
    /// Approximate entry bound for the evaluation memo cache.
    pub cache_capacity: usize,
    /// Statically prune candidates the analyzer proves infeasible
    /// (`flextensor-analyze`'s feature-level legality rules) before the
    /// cost model runs. The analyzer's soundness contract guarantees the
    /// best configuration and cost are identical either way; pruned
    /// candidates skip the modeled measurement cost, and their tally shows
    /// up in [`EvalStats::pruned`] and `analyzer_stats` trace records.
    pub analyzer_gate: bool,
    /// Evaluate each trial's candidates incrementally
    /// ([`flextensor_schedule::delta`]): every candidate is a single-field
    /// move from its starting point, so the pool patches only the features
    /// that move can affect instead of recomputing all of them. The delta
    /// path is bit-identical to the full path by construction, so the
    /// search result, trace, and RNG sequence are unchanged; only
    /// evaluation throughput improves. Delta-vs-full tallies show up in
    /// [`EvalStats::delta_hits`] / [`EvalStats::delta_full`] and
    /// `delta_stats` trace records. Composes with `analyzer_gate`.
    pub delta_eval: bool,
    /// Gate candidates through the region analysis
    /// ([`flextensor_analyze::analyze_region`]): each fresh candidate is
    /// bucketed into its power-of-two factor box, and a box the abstract
    /// interpretation certifies *statically illegal* rejects every member
    /// before the cost model runs — one interval analysis covers the
    /// whole bucket. The verdict is a pure function of the candidate, so
    /// the gate is result-preserving: it only skips evaluations that
    /// would have scored `None` anyway, and the best configuration, cost
    /// bits, and RNG trajectory are identical either way. At the end of
    /// the run a zero-evaluation branch-and-bound sweep
    /// ([`crate::sweep::certify`]) additionally certifies how much of the
    /// factor space around the best point provably cannot beat it.
    /// Tallies show up in [`EvalStats::region_pruned`] /
    /// [`EvalStats::regions_analyzed`], a `region_stats` trace record,
    /// and [`SearchResult::region_sweep`]. Composes with `analyzer_gate`
    /// and `delta_eval`.
    pub region_gate: bool,
    /// Structured trace sink (disabled by default). When enabled, the
    /// search emits the full event stream of `docs/TRACE_FORMAT.md`:
    /// trial lifecycle, every absorbed candidate, SA moves, Q-network
    /// training rounds, pool statistics, and a final run summary that a
    /// recorded trace replays to bit-for-bit.
    pub telemetry: Telemetry,
    /// Warm-start seed configurations (canonical integer encodings),
    /// typically the nearest-shape neighbor's best configs from a
    /// `flextensor-tunedb` database. Each encoding is adapted onto this
    /// op ([`crate::warm::adapt_encoding`]) and joins the trial-0 seed
    /// batch *after* the naive point and the random samples, so a
    /// warm-started run draws the identical RNG sequence as a cold one.
    /// Unadaptable encodings are skipped.
    pub warm_start: Vec<Vec<i64>>,
    /// Embeds this search as a slice of a larger trial budget:
    /// `(prior_trials, total_trials)`. The Q-method's ε-greedy anneal
    /// normally tracks `trial / trials`; with a window set it tracks
    /// `(prior_trials + trial) / total_trials` instead, so a caller that
    /// splits one budget into warm-started rounds (the
    /// `flextensor-graph` dispatcher) anneals across the *whole* budget
    /// rather than restarting ε every round. `None` (the default) leaves
    /// every existing search bit-identical. P-method and random-walk
    /// draws never depend on the budget, so the window only affects the
    /// Q-method.
    pub anneal_window: Option<(usize, usize)>,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            trials: 100,
            starts: 8,
            gamma: 2.0,
            initial_samples: 16,
            seed: 0xF1E2_7E50,
            measure_overhead_s: 0.8,
            measure_repeats: 10,
            stop_when_seconds: None,
            eval_workers: 1,
            cache_capacity: 1 << 20,
            analyzer_gate: false,
            delta_eval: false,
            region_gate: false,
            telemetry: Telemetry::null(),
            warm_start: Vec::new(),
            anneal_window: None,
        }
    }
}

/// One point of the convergence trace (drives Figs. 6d and 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Trial index.
    pub trial: usize,
    /// Cumulative on-device measurements so far.
    pub measurements: usize,
    /// Cumulative modeled exploration time, seconds.
    pub exploration_time_s: f64,
    /// Best kernel time found so far, seconds.
    pub best_seconds: f64,
    /// Best throughput found so far, GFLOP/s.
    pub best_gflops: f64,
}

/// Result of one exploration run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best configuration found.
    pub best: NodeConfig,
    /// Its cost.
    pub best_cost: Cost,
    /// Convergence trace, one point per trial.
    pub trace: Vec<TracePoint>,
    /// Total on-device measurements performed.
    pub measurements: usize,
    /// Total modeled exploration time, seconds.
    pub exploration_time_s: f64,
    /// Size of the explored schedule space (points).
    pub space_size: f64,
    /// Evaluation-layer statistics: fresh evaluations, cache hit rate,
    /// worker count, and real wall-clock spent evaluating.
    pub eval_stats: EvalStats,
    /// Warm-start encodings that were successfully adapted and absorbed
    /// into the trial-0 seed batch (0 for cold searches).
    pub warm_seeds: usize,
    /// Counters from the end-of-run certification sweep
    /// ([`crate::sweep::certify`]); present iff
    /// [`SearchOptions::region_gate`] was enabled. The sweep performs no
    /// concrete evaluations and cannot change the search result.
    pub region_sweep: Option<crate::sweep::RegionSweep>,
}

/// Errors from exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchError(pub String);

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "search failed: {}", self.0)
    }
}

impl std::error::Error for SearchError {}

struct Driver<'a> {
    graph: &'a Graph,
    pool: EvalPool,
    space: Space,
    history: History,
    measurements: usize,
    time_s: f64,
    opts: SearchOptions,
    clock: Instant,
}

impl<'a> Driver<'a> {
    /// Folds one batched evaluation outcome into `H` and the time
    /// accounting, and logs the candidate. Only *fresh* outcomes (the
    /// pool actually ran the evaluator) count as on-device measurements;
    /// cache hits cost zero modeled time, and so do candidates the
    /// analyzer gate pruned — no kernel was ever compiled or launched for
    /// them. Returns the performance value `E` (0 for infeasible).
    fn absorb(&mut self, trial: usize, cfg: &NodeConfig, outcome: EvalOutcome) -> f64 {
        let measured = outcome.fresh && !outcome.pruned;
        if measured {
            self.measurements += 1;
            self.time_s += self.opts.measure_overhead_s;
            if let Some(c) = outcome.cost {
                self.time_s += self.opts.measure_repeats as f64 * c.seconds;
            }
            // An infeasible point (compile / launch failure) still costs
            // the overhead, but has no kernel time to repeat.
        }
        if self.opts.telemetry.is_enabled() {
            // Pruned candidates log as non-fresh: replay's time fold bills
            // `fresh` records, and pruned points cost nothing.
            self.opts.telemetry.emit(TraceEvent::CandidateEvaluated {
                trial,
                key: config_key(&cfg.encode()),
                seconds: outcome.cost.map(|c| c.seconds),
                fresh: measured,
            });
        }
        let e = match outcome.cost {
            Some(c) => 1.0 / c.seconds,
            None => 0.0,
        };
        self.history.record(cfg.clone(), e);
        e
    }

    /// Wall-clock seconds since the run began (trace timestamps).
    fn wall_s(&self) -> f64 {
        self.clock.elapsed().as_secs_f64()
    }

    fn trace_point(&self, trial: usize) -> TracePoint {
        let (best_seconds, best_gflops) = match self.history.best() {
            Some((_, e)) if e > 0.0 => {
                let s = 1.0 / e;
                (s, self.graph.flops() as f64 / s / 1e9)
            }
            _ => (f64::INFINITY, 0.0),
        };
        TracePoint {
            trial,
            measurements: self.measurements,
            exploration_time_s: self.time_s,
            best_seconds,
            best_gflops,
        }
    }

    fn reached_target(&self) -> bool {
        match (self.opts.stop_when_seconds, self.history.best()) {
            (Some(target), Some((_, e))) if e > 0.0 => 1.0 / e <= target,
            _ => false,
        }
    }
}

/// Runs schedule exploration for a graph on a device model.
///
/// # Errors
///
/// Returns [`SearchError`] when no feasible point is found within the
/// budget (pathological spaces only).
pub fn search(
    graph: &Graph,
    evaluator: &Evaluator,
    method: Method,
    opts: &SearchOptions,
) -> Result<SearchResult, SearchError> {
    let space = Space::new(graph, evaluator.target());
    let space_size = space.size();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut agent = match method {
        Method::QMethod => Some(QAgent::new(
            space.feature_dim(),
            space.directions().len(),
            &mut rng,
        )),
        _ => None,
    };

    let mut d = Driver {
        graph,
        pool: if opts.region_gate {
            EvalPool::new_region_gated(
                graph,
                evaluator,
                opts.eval_workers,
                opts.cache_capacity,
                opts.analyzer_gate,
                opts.delta_eval,
            )
        } else if opts.delta_eval {
            EvalPool::new_delta(
                graph,
                evaluator,
                opts.eval_workers,
                opts.cache_capacity,
                opts.analyzer_gate,
            )
        } else if opts.analyzer_gate {
            EvalPool::new_gated(graph, evaluator, opts.eval_workers, opts.cache_capacity)
        } else {
            EvalPool::new(graph, evaluator, opts.eval_workers, opts.cache_capacity)
        },
        space,
        history: History::new(),
        measurements: 0,
        time_s: 0.0,
        opts: opts.clone(),
        clock: Instant::now(),
    };
    let tel = opts.telemetry.clone();
    tel.emit(TraceEvent::RunStarted {
        method: method.slug().to_string(),
        seed: opts.seed,
        trials: opts.trials,
        starts: opts.starts,
        workers: d.pool.workers(),
        measure_overhead_s: opts.measure_overhead_s,
        measure_repeats: opts.measure_repeats,
        flops: graph.flops(),
    });

    // Seed the history: the naive point plus random samples, evaluated as
    // one batch (duplicate draws resolve as in-batch cache hits). The
    // trace logs the seeding phase as trial 0.
    let mut seeds = vec![d.space.start_point().clone()];
    for _ in 0..opts.initial_samples {
        seeds.push(d.space.random_point(&mut rng));
    }
    // Warm-start seeds join *after* the random draws, so the RNG sequence
    // (and hence every cold-path decision) is unchanged by their presence.
    let mut warm_seeds = 0usize;
    for enc in &opts.warm_start {
        if let Some(cfg) = crate::warm::adapt_encoding(d.space.op(), enc) {
            if !seeds.contains(&cfg) {
                seeds.push(cfg);
                warm_seeds += 1;
            }
        }
    }
    tel.emit(TraceEvent::TrialStarted {
        trial: 0,
        starts: seeds.len(),
        wall_s: d.wall_s(),
    });
    let outcomes = d.pool.evaluate_batch(&seeds);
    d.pool.emit_stats(&tel, 0);
    for (cfg, oc) in seeds.iter().zip(outcomes) {
        d.absorb(0, cfg, oc);
    }

    let mut trace = Vec::with_capacity(opts.trials + 1);
    trace.push(d.trace_point(0));

    // Reused feature buffer for Q-direction choice (zero allocation per
    // start once warm).
    let mut feats = Vec::new();

    'outer: for trial in 1..=opts.trials {
        if let Some(agent) = agent.as_mut() {
            let progress = match opts.anneal_window {
                Some((prior, total)) => ((prior + trial) as f64 / total.max(1) as f64).min(1.0),
                None => trial as f64 / opts.trials.max(1) as f64,
            };
            agent.set_progress(progress);
        }
        let starts = d
            .history
            .select_starts_with_energy(opts.starts, opts.gamma, &mut rng);
        tel.emit(TraceEvent::TrialStarted {
            trial,
            starts: starts.len(),
            wall_s: d.wall_s(),
        });

        // Phase 1: build the trial's full candidate batch — every chosen
        // (start, direction) move — before evaluating anything. The RNG is
        // consumed in the same per-start order as a serial walk, and
        // evaluation never touches it, so batching leaves the draw
        // sequence unchanged.
        let mut meta: Vec<(usize, usize)> = Vec::new(); // (start idx, action)
        let mut cands: Vec<NodeConfig> = Vec::new();
        for (si, (p, _)) in starts.iter().enumerate() {
            // Applicable = the direction exists from p and leads to a
            // point unvisited as of the start of this trial.
            let mut neighbors: Vec<Option<NodeConfig>> = d
                .space
                .directions()
                .iter()
                .map(|&dir| d.space.apply(p, dir).filter(|n| !d.history.contains(n)))
                .collect();
            let chosen: Vec<usize> = match method {
                Method::PMethod => (0..neighbors.len())
                    .filter(|&i| neighbors[i].is_some())
                    .collect(),
                Method::RandomWalk => {
                    let avail: Vec<usize> = (0..neighbors.len())
                        .filter(|&i| neighbors[i].is_some())
                        .collect();
                    if avail.is_empty() {
                        vec![]
                    } else {
                        vec![avail[rng.gen_range(0..avail.len())]]
                    }
                }
                Method::QMethod => {
                    let mask: Vec<bool> = neighbors.iter().map(Option::is_some).collect();
                    d.space.features_into(p, &mut feats);
                    match agent
                        .as_mut()
                        .expect("Q agent exists")
                        .choose(&feats, &mask, &mut rng)
                    {
                        Some(a) => vec![a],
                        None => vec![],
                    }
                }
            };
            for a in chosen {
                meta.push((si, a));
                // Each chosen index is distinct, so the neighbor moves out
                // of its slot instead of being cloned.
                cands.push(neighbors[a].take().expect("chosen neighbor exists"));
            }
        }

        // Phase 2: evaluate the whole batch — memoized, fanned out over
        // the pool's workers. With delta evaluation on, each candidate
        // carries its starting point so the pool can patch features
        // incrementally instead of recomputing them.
        let outcomes = if opts.delta_eval {
            let bases: Vec<NodeConfig> = starts.iter().map(|(p, _)| p.clone()).collect();
            let base_of: Vec<usize> = meta.iter().map(|&(si, _)| si).collect();
            d.pool.evaluate_batch_delta(&cands, &base_of, &bases)
        } else {
            d.pool.evaluate_batch(&cands)
        };
        d.pool.emit_stats(&tel, trial);

        // Phase 3: reduce in fixed candidate order. Hitting the stop
        // target discards the rest of the batch: those points are cached
        // but never absorbed, so they cost no modeled measurement.
        for (((si, a), n), oc) in meta.iter().zip(&cands).zip(outcomes) {
            let (p, e_p) = &starts[*si];
            let e_p = *e_p;
            let e_n = d.absorb(trial, n, oc);
            tel.emit(TraceEvent::SaStep {
                trial,
                temperature: opts.gamma,
                energy: e_n,
                accepted: e_n > e_p,
            });
            if let Some(agent) = agent.as_mut() {
                let reward = if e_p > 0.0 {
                    ((e_n - e_p) / e_p).clamp(-1.0, 10.0)
                } else if e_n > 0.0 {
                    1.0
                } else {
                    -1.0
                };
                agent.record(Transition {
                    state: d.space.features(p),
                    action: *a,
                    reward,
                    next_state: d.space.features(n),
                });
            }
            if d.reached_target() {
                trace.push(d.trace_point(trial));
                break 'outer;
            }
        }
        if let Some(agent) = agent.as_mut() {
            if let Some(loss) = agent.end_trial(&mut rng) {
                tel.emit(TraceEvent::QUpdate {
                    trial,
                    loss,
                    epsilon: agent.epsilon(),
                    target_sync: true,
                });
            }
        }
        trace.push(d.trace_point(trial));
        if d.reached_target() {
            break;
        }
    }

    let (best, e) = d
        .history
        .best()
        .ok_or_else(|| SearchError("no feasible schedule found".into()))?;
    let best = best.clone();
    let seconds = 1.0 / e;
    // End-of-run certification sweep: zero evaluations, no history
    // access — it can only produce counters, never change the result.
    let region_sweep = opts.region_gate.then(|| {
        crate::sweep::certify(
            graph,
            evaluator,
            &best,
            seconds,
            crate::sweep::DEFAULT_SWEEP_REGIONS,
        )
    });
    if tel.is_enabled() {
        let stats = d.pool.stats();
        if let Some(sweep) = &region_sweep {
            tel.emit(TraceEvent::RegionStats {
                trial: trace.last().map_or(0, |t| t.trial),
                regions_analyzed: stats.regions_analyzed,
                region_pruned: stats.region_pruned,
                swept: sweep.examined,
                sweep_illegal: sweep.certified_illegal,
                sweep_pruned: sweep.certified_pruned,
                sweep_open: sweep.open,
                sweep_truncated: sweep.truncated,
            });
        }
        tel.emit(TraceEvent::RunSummary {
            trials: trace.last().map_or(0, |t| t.trial),
            measurements: d.measurements,
            exploration_time_s: d.time_s,
            best_seconds: seconds,
            best_gflops: graph.flops() as f64 / seconds / 1e9,
            evaluated: stats.evaluated,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            wall_s: d.wall_s(),
        });
        tel.flush();
    }
    Ok(SearchResult {
        best,
        best_cost: Cost {
            seconds,
            flops: graph.flops(),
        },
        trace,
        measurements: d.measurements,
        exploration_time_s: d.time_s,
        space_size,
        eval_stats: d.pool.stats(),
        warm_seeds,
        region_sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, Device};

    fn quick_opts(trials: usize) -> SearchOptions {
        SearchOptions {
            trials,
            starts: 4,
            initial_samples: 8,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn all_methods_find_feasible_schedules() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
            let r = search(&g, &ev, m, &quick_opts(10)).unwrap();
            assert!(r.best_cost.seconds.is_finite(), "{m}");
            assert!(r.best_cost.gflops() > 0.0, "{m}");
            assert!(r.measurements > 0);
            assert!(r.exploration_time_s > 0.0);
        }
    }

    #[test]
    fn search_improves_over_seeds() {
        let g = ops::gemm(512, 512, 512);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let r = search(&g, &ev, Method::QMethod, &quick_opts(40)).unwrap();
        let first = r.trace.first().unwrap().best_gflops;
        let last = r.trace.last().unwrap().best_gflops;
        assert!(
            last >= first,
            "exploration should not regress: {first} -> {last}"
        );
        assert!(
            last > 1.2 * first,
            "should improve noticeably: {first} -> {last}"
        );
    }

    #[test]
    fn p_method_measures_more_per_trial_than_q() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let q = search(&g, &ev, Method::QMethod, &quick_opts(10)).unwrap();
        let p = search(&g, &ev, Method::PMethod, &quick_opts(10)).unwrap();
        assert!(
            p.measurements > 2 * q.measurements,
            "P {} vs Q {}",
            p.measurements,
            q.measurements
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ops::gemm(128, 128, 128);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let a = search(&g, &ev, Method::QMethod, &quick_opts(8)).unwrap();
        let b = search(&g, &ev, Method::QMethod, &quick_opts(8)).unwrap();
        assert_eq!(a.best.encode(), b.best.encode());
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn full_anneal_window_matches_no_window_bit_for_bit() {
        // `(0, trials)` makes the windowed progress arithmetic identical
        // to the default, so the entire search must be too.
        let g = ops::gemm(128, 128, 128);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let plain = search(&g, &ev, Method::QMethod, &quick_opts(8)).unwrap();
        let windowed = search(
            &g,
            &ev,
            Method::QMethod,
            &SearchOptions {
                anneal_window: Some((0, 8)),
                ..quick_opts(8)
            },
        )
        .unwrap();
        assert_eq!(plain.best.encode(), windowed.best.encode());
        assert_eq!(
            plain.best_cost.seconds.to_bits(),
            windowed.best_cost.seconds.to_bits()
        );
        assert_eq!(plain.measurements, windowed.measurements);
    }

    #[test]
    fn anneal_window_is_deterministic() {
        let g = ops::gemm(128, 128, 128);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let opts = SearchOptions {
            anneal_window: Some((16, 48)),
            ..quick_opts(8)
        };
        let a = search(&g, &ev, Method::QMethod, &opts).unwrap();
        let b = search(&g, &ev, Method::QMethod, &opts).unwrap();
        assert_eq!(a.best.encode(), b.best.encode());
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn analyzer_gate_preserves_search_results() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
            let off = search(&g, &ev, m, &quick_opts(10)).unwrap();
            let mut opts = quick_opts(10);
            opts.analyzer_gate = true;
            let on = search(&g, &ev, m, &opts).unwrap();
            // Identical best point and bit-identical cost: pruning only
            // skips evaluations that were provably infeasible anyway.
            assert_eq!(on.best.encode(), off.best.encode(), "{m}");
            assert_eq!(
                on.best_cost.seconds.to_bits(),
                off.best_cost.seconds.to_bits(),
                "{m}"
            );
            // The gate's whole point: pruned candidates are never billed
            // as modeled on-device measurements.
            assert_eq!(off.eval_stats.pruned, 0, "{m}");
            assert!(on.eval_stats.pruned > 0, "{m}: nothing was pruned");
            assert_eq!(
                on.measurements + on.eval_stats.pruned,
                off.measurements,
                "{m}"
            );
            assert!(on.exploration_time_s < off.exploration_time_s, "{m}");
        }
    }

    #[test]
    fn delta_eval_preserves_search_results_bit_for_bit() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
            let off = search(&g, &ev, m, &quick_opts(10)).unwrap();
            let mut opts = quick_opts(10);
            opts.delta_eval = true;
            let on = search(&g, &ev, m, &opts).unwrap();
            // The delta path is bit-identical by construction, so the
            // whole search trajectory must be unchanged — same best point,
            // same cost bits, same trace, same time accounting.
            assert_eq!(on.best.encode(), off.best.encode(), "{m}");
            assert_eq!(
                on.best_cost.seconds.to_bits(),
                off.best_cost.seconds.to_bits(),
                "{m}"
            );
            assert_eq!(on.trace, off.trace, "{m}");
            assert_eq!(on.measurements, off.measurements, "{m}");
            assert_eq!(on.eval_stats.evaluated, off.eval_stats.evaluated, "{m}");
            // And the fast path must actually be exercised.
            assert_eq!(off.eval_stats.delta_hits, 0, "{m}");
            assert!(on.eval_stats.delta_hits > 0, "{m}: delta path never ran");
            assert_eq!(
                on.eval_stats.delta_hits + on.eval_stats.delta_full,
                on.eval_stats.evaluated,
                "{m}"
            );
        }
    }

    #[test]
    fn delta_eval_composes_with_the_analyzer_gate() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let mut gated = quick_opts(10);
        gated.analyzer_gate = true;
        let off = search(&g, &ev, Method::QMethod, &gated).unwrap();
        let mut both = gated.clone();
        both.delta_eval = true;
        let on = search(&g, &ev, Method::QMethod, &both).unwrap();
        assert_eq!(on.best.encode(), off.best.encode());
        assert_eq!(
            on.best_cost.seconds.to_bits(),
            off.best_cost.seconds.to_bits()
        );
        assert_eq!(on.eval_stats.pruned, off.eval_stats.pruned);
        assert!(on.eval_stats.delta_hits > 0);
    }

    #[test]
    fn delta_search_traces_still_replay_exactly() {
        use flextensor_telemetry::{replay, MemorySink};
        use std::sync::Arc;

        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let sink = Arc::new(MemorySink::new());
        let mut opts = quick_opts(6);
        opts.delta_eval = true;
        opts.telemetry = Telemetry::new(sink.clone());
        let r = search(&g, &ev, Method::QMethod, &opts).unwrap();

        let events = sink.events();
        let rep = replay::replay(&events).unwrap();
        assert!(rep.summary_matches(), "{:#?}", rep.replayed);
        match rep.delta {
            Some(TraceEvent::DeltaStats {
                delta_hits,
                delta_full,
                ..
            }) => {
                assert_eq!(delta_hits, r.eval_stats.delta_hits);
                assert_eq!(delta_full, r.eval_stats.delta_full);
                assert!(delta_hits > 0);
            }
            other => panic!("delta run must record delta_stats, got {other:?}"),
        }
    }

    #[test]
    fn gated_search_traces_still_replay_exactly() {
        use flextensor_telemetry::{replay, MemorySink};
        use std::sync::Arc;

        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let sink = Arc::new(MemorySink::new());
        let mut opts = quick_opts(6);
        opts.analyzer_gate = true;
        opts.telemetry = Telemetry::new(sink.clone());
        let r = search(&g, &ev, Method::QMethod, &opts).unwrap();

        let events = sink.events();
        let rep = replay::replay(&events).unwrap();
        assert!(rep.summary_matches(), "{:#?}", rep.replayed);
        match rep.analyzer {
            Some(TraceEvent::AnalyzerStats { pruned, .. }) => {
                assert_eq!(pruned, r.eval_stats.pruned);
                assert!(pruned > 0);
            }
            other => panic!("gated run must record analyzer_stats, got {other:?}"),
        }
    }

    #[test]
    fn region_gate_preserves_search_results() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        for m in [Method::QMethod, Method::PMethod, Method::RandomWalk] {
            let off = search(&g, &ev, m, &quick_opts(10)).unwrap();
            let mut opts = quick_opts(10);
            opts.region_gate = true;
            let on = search(&g, &ev, m, &opts).unwrap();
            // The gate only rejects members of regions certified
            // statically illegal — points the evaluator scores `None`
            // anyway — so the search trajectory is bit-identical.
            assert_eq!(on.best.encode(), off.best.encode(), "{m}");
            assert_eq!(
                on.best_cost.seconds.to_bits(),
                off.best_cost.seconds.to_bits(),
                "{m}"
            );
            // Pruned members were never billed as modeled measurements.
            assert_eq!(off.eval_stats.region_pruned, 0, "{m}");
            assert_eq!(off.eval_stats.regions_analyzed, 0, "{m}");
            assert!(
                on.eval_stats.region_pruned > 0,
                "{m}: region gate never fired"
            );
            assert!(on.eval_stats.regions_analyzed > 0, "{m}");
            assert_eq!(
                on.measurements + on.eval_stats.pruned,
                off.measurements,
                "{m}"
            );
            // The certification sweep ran and its counters are sane.
            assert_eq!(off.region_sweep, None, "{m}");
            let sweep = on.region_sweep.expect("gated run must sweep");
            assert!(sweep.examined > 0, "{m}");
            assert!(
                sweep.open >= 1,
                "{m}: the best point's region must stay open: {sweep:?}"
            );
        }
    }

    #[test]
    fn region_gate_composes_with_analyzer_gate_and_delta_eval() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let off = search(&g, &ev, Method::QMethod, &quick_opts(10)).unwrap();
        let mut opts = quick_opts(10);
        opts.region_gate = true;
        opts.analyzer_gate = true;
        opts.delta_eval = true;
        let on = search(&g, &ev, Method::QMethod, &opts).unwrap();
        assert_eq!(on.best.encode(), off.best.encode());
        assert_eq!(
            on.best_cost.seconds.to_bits(),
            off.best_cost.seconds.to_bits()
        );
        assert!(on.eval_stats.region_pruned > 0);
        assert!(on.eval_stats.delta_hits > 0);
    }

    #[test]
    fn region_gated_search_traces_still_replay_exactly() {
        use flextensor_telemetry::{replay, MemorySink};
        use std::sync::Arc;

        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let sink = Arc::new(MemorySink::new());
        let mut opts = quick_opts(6);
        opts.region_gate = true;
        opts.telemetry = Telemetry::new(sink.clone());
        let r = search(&g, &ev, Method::QMethod, &opts).unwrap();

        let events = sink.events();
        let rep = replay::replay(&events).unwrap();
        assert!(rep.summary_matches(), "{:#?}", rep.replayed);
        match rep.region {
            Some(TraceEvent::RegionStats {
                regions_analyzed,
                region_pruned,
                swept,
                sweep_illegal,
                sweep_pruned,
                sweep_open,
                sweep_truncated,
                ..
            }) => {
                assert_eq!(regions_analyzed, r.eval_stats.regions_analyzed);
                assert_eq!(region_pruned, r.eval_stats.region_pruned);
                assert!(region_pruned > 0);
                let sweep = r.region_sweep.unwrap();
                assert_eq!(swept, sweep.examined);
                assert_eq!(sweep_illegal, sweep.certified_illegal);
                assert_eq!(sweep_pruned, sweep.certified_pruned);
                assert_eq!(sweep_open, sweep.open);
                assert_eq!(sweep_truncated, sweep.truncated);
            }
            other => panic!("region-gated run must record region_stats, got {other:?}"),
        }
        // An ungated trace carries no region record at all.
        let sink2 = Arc::new(MemorySink::new());
        let mut plain = quick_opts(6);
        plain.telemetry = Telemetry::new(sink2.clone());
        search(&g, &ev, Method::QMethod, &plain).unwrap();
        assert!(replay::replay(&sink2.events()).unwrap().region.is_none());
    }

    #[test]
    fn warm_start_absorbs_seeds_without_touching_the_cold_rng_path() {
        let g = ops::gemm(128, 128, 128);
        let ev = Evaluator::new(Device::Gpu(v100()));
        // A well-tuned config for a neighboring shape.
        let src = ops::gemm(256, 256, 256);
        let tuned = search(&src, &ev, Method::PMethod, &quick_opts(10)).unwrap();
        let cold = search(&g, &ev, Method::RandomWalk, &quick_opts(0)).unwrap();
        let mut opts = quick_opts(0);
        opts.warm_start = vec![tuned.best.encode(), vec![1, 2, 3]]; // second is garbage
        let warm = search(&g, &ev, Method::RandomWalk, &opts).unwrap();
        assert_eq!(cold.warm_seeds, 0);
        assert_eq!(warm.warm_seeds, 1);
        // With zero trials the result is the best of the seed batch, and
        // the warm batch is a superset of the cold one.
        assert!(warm.best_cost.seconds <= cold.best_cost.seconds);
    }

    #[test]
    fn stop_when_target_reached() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        // First find a good time, then ask a fresh search to stop at a
        // loose target: it should finish early with fewer measurements.
        let full = search(&g, &ev, Method::PMethod, &quick_opts(20)).unwrap();
        let loose = full.best_cost.seconds * 4.0;
        let mut opts = quick_opts(20);
        opts.stop_when_seconds = Some(loose);
        let early = search(&g, &ev, Method::PMethod, &opts).unwrap();
        assert!(early.best_cost.seconds <= loose);
        assert!(early.measurements <= full.measurements);
    }

    #[test]
    fn trace_is_monotone() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let r = search(&g, &ev, Method::RandomWalk, &quick_opts(15)).unwrap();
        for w in r.trace.windows(2) {
            assert!(w[1].best_seconds <= w[0].best_seconds);
            assert!(w[1].exploration_time_s >= w[0].exploration_time_s);
            assert!(w[1].measurements >= w[0].measurements);
        }
    }
}
