//! Schedule-space generation, pruning, and the high-dimensional
//! rearrangement of §4.2.
//!
//! A point in the space is a [`NodeConfig`]; the space is *implicit* —
//! defined by the set of [`Direction`]s that connect neighboring points.
//! Pruning is built into the representation:
//!
//! * **divisible splits only** — factors are redistributions of the
//!   extent's prime factorization, so every split is exact;
//! * **bounded combination depth** — exactly 4 spatial / 3 reduce
//!   sub-loops per axis (recursion of split/fuse is capped);
//! * **hardware-fixed decisions** — per §4.2, some choices are
//!   pre-determined per target (vectorize innermost on CPU, bind structure
//!   on GPU, the three-stage pipeline on FPGA), so the corresponding
//!   directions simply do not exist on those targets.
//!
//! The rearrangement into a high-dimensional neighborhood is the
//! `SplitMove { from, to }` direction family: for a factorization
//! `[f1..fN]`, the neighbor at direction `(i, j)` moves one prime factor
//! from level `j` to level `i` — exactly the paper's
//! `g_i > f_i, g_j < f_j` neighbors.

use flextensor_ir::graph::{ComputeOp, Graph};
use flextensor_schedule::config::{NodeConfig, TargetKind, REDUCE_PARTS, SPATIAL_PARTS};
use rand::Rng;

/// Which loop family a direction's axis lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisRef {
    /// The `i`-th spatial axis.
    Spatial(usize),
    /// The `i`-th reduce axis.
    Reduce(usize),
}

/// One neighborhood direction in the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Move one prime factor of the named axis's split from level `from`
    /// to level `to` (the §4.2 `(i, j)` direction).
    SplitMove {
        /// The axis whose split changes.
        axis: AxisRef,
        /// Level losing a prime factor.
        from: usize,
        /// Level gaining it.
        to: usize,
    },
    /// Swap adjacent entries of the reorder permutation.
    SwapReorder {
        /// Position swapped with `pos + 1`.
        pos: usize,
    },
    /// Fuse one more outermost loop into the parallel loop (CPU).
    FuseMore,
    /// Fuse one fewer.
    FuseLess,
    /// Toggle inner-loop unrolling.
    ToggleUnroll,
    /// Toggle shared-memory caching (GPU).
    ToggleCache,
    /// Toggle inlining of data-movement producers.
    ToggleInline,
    /// Double the FPGA memory partition factor.
    PartitionUp,
    /// Halve it.
    PartitionDown,
    /// Add an overlapped FPGA pipeline stage.
    PipelineUp,
    /// Remove one.
    PipelineDown,
}

/// Smallest prime factor of `n` (`n` ≥ 2).
fn smallest_prime_factor(n: i64) -> i64 {
    debug_assert!(n >= 2);
    if n % 2 == 0 {
        return 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n % d == 0 {
            return d;
        }
        d += 2;
    }
    n
}

/// Number of ordered factorizations of `n` into `parts` factors
/// (stars-and-bars per prime power; multiplicative).
pub fn num_factorizations(n: i64, parts: u32) -> f64 {
    let mut n = n;
    let mut total = 1.0f64;
    let mut p = 2;
    while p * p <= n {
        if n % p == 0 {
            let mut a = 0u32;
            while n % p == 0 {
                n /= p;
                a += 1;
            }
            total *= binomial(a + parts - 1, parts - 1);
        }
        p += 1;
    }
    if n > 1 {
        total *= binomial(parts, parts - 1); // a = 1
    }
    total
}

fn binomial(n: u32, k: u32) -> f64 {
    let k = k.min(n - k.min(n));
    let mut r = 1.0f64;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// The schedule space of one compute node on one target (§4.2).
#[derive(Debug, Clone)]
pub struct Space {
    op: ComputeOp,
    target: TargetKind,
    directions: Vec<Direction>,
}

impl Space {
    /// Builds the (pruned, rearranged) space for a graph's anchor op (the
    /// arithmetic core; fused epilogues have no schedule decisions of
    /// their own).
    pub fn new(graph: &Graph, target: TargetKind) -> Space {
        let op = graph.anchor_op().clone();
        let ns = op.spatial.len();
        let nr = op.reduce.len();
        let mut directions = Vec::new();
        for i in 0..ns {
            if op.spatial[i].extent == 1 {
                continue; // no factors to move
            }
            for from in 0..SPATIAL_PARTS {
                for to in 0..SPATIAL_PARTS {
                    if from != to {
                        directions.push(Direction::SplitMove {
                            axis: AxisRef::Spatial(i),
                            from,
                            to,
                        });
                    }
                }
            }
        }
        for i in 0..nr {
            if op.reduce[i].extent == 1 {
                continue;
            }
            for from in 0..REDUCE_PARTS {
                for to in 0..REDUCE_PARTS {
                    if from != to {
                        directions.push(Direction::SplitMove {
                            axis: AxisRef::Reduce(i),
                            from,
                            to,
                        });
                    }
                }
            }
        }
        for pos in 0..ns.saturating_sub(1) {
            directions.push(Direction::SwapReorder { pos });
        }
        directions.push(Direction::ToggleUnroll);
        directions.push(Direction::ToggleInline);
        match target {
            TargetKind::Cpu => {
                directions.push(Direction::FuseMore);
                directions.push(Direction::FuseLess);
            }
            TargetKind::Gpu => {
                directions.push(Direction::ToggleCache);
            }
            TargetKind::Fpga => {
                directions.push(Direction::PartitionUp);
                directions.push(Direction::PartitionDown);
                directions.push(Direction::PipelineUp);
                directions.push(Direction::PipelineDown);
            }
        }
        Space {
            op,
            target,
            directions,
        }
    }

    /// The compute op this space schedules.
    pub fn op(&self) -> &ComputeOp {
        &self.op
    }

    /// The target the space was pruned for.
    pub fn target(&self) -> TargetKind {
        self.target
    }

    /// All directions (the action set of the Q-learning formulation).
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// The hardware-fixed defaults applied to every point on this target
    /// (§4.2's pre-determined decisions).
    fn apply_target_defaults(&self, cfg: &mut NodeConfig) {
        cfg.vectorize = true;
        match self.target {
            TargetKind::Cpu => {
                cfg.cache_shared = false;
                cfg.fuse_outer = cfg.fuse_outer.clamp(1, self.op.spatial.len());
            }
            TargetKind::Gpu => {
                // All level-0 factors fuse into the grid.
                cfg.fuse_outer = self.op.spatial.len();
            }
            TargetKind::Fpga => {
                cfg.cache_shared = false;
            }
        }
    }

    /// The identity point (naive schedule) with target defaults applied.
    pub fn start_point(&self) -> NodeConfig {
        let mut cfg = NodeConfig::naive(&self.op);
        self.apply_target_defaults(&mut cfg);
        cfg
    }

    /// Samples a uniform random point: each axis's prime factors are
    /// scattered uniformly over its levels; flags and permutation random.
    pub fn random_point(&self, rng: &mut impl Rng) -> NodeConfig {
        let mut cfg = NodeConfig::naive(&self.op);
        let scatter = |extent: i64, parts: usize, rng: &mut dyn rand::RngCore| -> Vec<i64> {
            let mut f = vec![1i64; parts];
            let mut n = extent;
            while n > 1 {
                let p = smallest_prime_factor(n);
                n /= p;
                let slot = rng.gen_range(0..parts);
                f[slot] *= p;
            }
            f
        };
        for (i, a) in self.op.spatial.iter().enumerate() {
            cfg.spatial_splits[i] = scatter(a.extent, SPATIAL_PARTS, rng);
        }
        for (i, a) in self.op.reduce.iter().enumerate() {
            cfg.reduce_splits[i] = scatter(a.extent, REDUCE_PARTS, rng);
        }
        // Random permutation (Fisher-Yates).
        let ns = self.op.spatial.len();
        let mut perm: Vec<usize> = (0..ns).collect();
        for i in (1..ns).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        cfg.reorder = perm;
        cfg.fuse_outer = rng.gen_range(1..=ns);
        cfg.unroll = rng.gen_bool(0.5);
        cfg.cache_shared = rng.gen_bool(0.5);
        cfg.inline_data = rng.gen_bool(0.8);
        cfg.fpga_partition = 1 << rng.gen_range(0..5);
        cfg.fpga_pipeline = rng.gen_range(1..=3);
        self.apply_target_defaults(&mut cfg);
        cfg
    }

    /// Returns the neighbor of `cfg` along `dir`, or `None` when the move
    /// is not applicable (e.g. no prime factor to move, permutation edge,
    /// or a bound reached).
    pub fn apply(&self, cfg: &NodeConfig, dir: Direction) -> Option<NodeConfig> {
        let mut out = cfg.clone();
        match dir {
            Direction::SplitMove { axis, from, to } => {
                let f = match axis {
                    AxisRef::Spatial(i) => &mut out.spatial_splits[i],
                    AxisRef::Reduce(i) => &mut out.reduce_splits[i],
                };
                if f[from] <= 1 {
                    return None;
                }
                let p = smallest_prime_factor(f[from]);
                f[from] /= p;
                f[to] *= p;
            }
            Direction::SwapReorder { pos } => {
                if pos + 1 >= out.reorder.len() {
                    return None;
                }
                out.reorder.swap(pos, pos + 1);
            }
            Direction::FuseMore => {
                if out.fuse_outer >= self.op.spatial.len() {
                    return None;
                }
                out.fuse_outer += 1;
            }
            Direction::FuseLess => {
                if out.fuse_outer <= 1 {
                    return None;
                }
                out.fuse_outer -= 1;
            }
            Direction::ToggleUnroll => out.unroll = !out.unroll,
            Direction::ToggleCache => out.cache_shared = !out.cache_shared,
            Direction::ToggleInline => out.inline_data = !out.inline_data,
            Direction::PartitionUp => {
                if out.fpga_partition >= 16 {
                    return None;
                }
                out.fpga_partition *= 2;
            }
            Direction::PartitionDown => {
                if out.fpga_partition <= 1 {
                    return None;
                }
                out.fpga_partition /= 2;
            }
            Direction::PipelineUp => {
                if out.fpga_pipeline >= 3 {
                    return None;
                }
                out.fpga_pipeline += 1;
            }
            Direction::PipelineDown => {
                if out.fpga_pipeline <= 1 {
                    return None;
                }
                out.fpga_pipeline -= 1;
            }
        }
        self.apply_target_defaults(&mut out);
        Some(out)
    }

    /// Size of the schedule space (number of points), as an `f64` because
    /// the paper's spaces reach 10¹²⁺.
    pub fn size(&self) -> f64 {
        let mut total = 1.0f64;
        for a in &self.op.spatial {
            total *= num_factorizations(a.extent, SPATIAL_PARTS as u32);
        }
        for a in &self.op.reduce {
            total *= num_factorizations(a.extent, REDUCE_PARTS as u32);
        }
        let ns = self.op.spatial.len() as f64;
        total *= (1..=ns as u64).product::<u64>() as f64; // reorder permutations
        total *= 2.0 * 2.0; // unroll, inline
        match self.target {
            TargetKind::Cpu => total *= 2.0 * ns, // cache off; fuse depth choices
            TargetKind::Gpu => total *= 2.0,      // cache toggle
            TargetKind::Fpga => total *= 5.0 * 3.0, // partition, pipeline
        }
        total
    }

    /// Normalized feature vector of a point — the Q-network input. Split
    /// factors appear as `log2(f) / 10`, the permutation as normalized
    /// positions, flags as 0/1.
    pub fn features(&self, cfg: &NodeConfig) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.feature_dim());
        self.features_into(cfg, &mut out);
        out
    }

    /// Writes [`Space::features`] into a caller-provided buffer (cleared
    /// first) — zero allocation once the buffer is warm. The SA/Q hot
    /// loops call this once per start per trial.
    pub fn features_into(&self, cfg: &NodeConfig, out: &mut Vec<f64>) {
        out.clear();
        for f in &cfg.spatial_splits {
            for &x in f {
                out.push((x as f64).log2() / 10.0);
            }
        }
        for f in &cfg.reduce_splits {
            for &x in f {
                out.push((x as f64).log2() / 10.0);
            }
        }
        let ns = cfg.reorder.len().max(1);
        for &r in &cfg.reorder {
            out.push(r as f64 / ns as f64);
        }
        out.push(cfg.fuse_outer as f64 / ns as f64);
        out.push(cfg.unroll as i64 as f64);
        out.push(cfg.cache_shared as i64 as f64);
        out.push(cfg.inline_data as i64 as f64);
        out.push((cfg.fpga_partition as f64).log2() / 4.0);
        out.push(cfg.fpga_pipeline as f64 / 3.0);
    }

    /// Width of [`Space::features`] vectors.
    pub fn feature_dim(&self) -> usize {
        self.op.spatial.len() * SPATIAL_PARTS
            + self.op.reduce.len() * REDUCE_PARTS
            + self.op.spatial.len()
            + 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gpu_space() -> Space {
        let g = ops::conv2d(ops::ConvParams::same(1, 64, 128, 3), 28, 28);
        Space::new(&g, TargetKind::Gpu)
    }

    #[test]
    fn factorization_counts() {
        // 8 = 2^3 into 4 parts: C(6,3) = 20.
        assert_eq!(num_factorizations(8, 4), 20.0);
        // 12 = 2^2 * 3 into 2 parts: C(3,1)*C(2,1) = 6.
        assert_eq!(num_factorizations(12, 2), 6.0);
        assert_eq!(num_factorizations(1, 4), 1.0);
        assert_eq!(num_factorizations(7, 3), 3.0);
    }

    #[test]
    fn space_size_is_huge_for_conv() {
        // The paper reports conv2d spaces of 3.9e9 to 2.4e12.
        let g = flextensor_ir::yolo::yolo_layer("C13").unwrap().graph(1);
        let s = Space::new(&g, TargetKind::Gpu).size();
        assert!(s > 1e9, "space too small: {s:e}");
        assert!(s < 1e14, "space implausibly large: {s:e}");
    }

    #[test]
    fn split_move_conserves_product() {
        let sp = gpu_space();
        let start = sp.start_point();
        let d = Direction::SplitMove {
            axis: AxisRef::Spatial(1),
            from: 3,
            to: 2,
        };
        let n = sp.apply(&start, d).unwrap();
        let f = &n.spatial_splits[1];
        assert_eq!(f.iter().product::<i64>(), 128);
        assert_eq!(f[2], 2);
        n.validate(sp.op()).unwrap();
    }

    #[test]
    fn split_move_requires_a_factor() {
        let sp = gpu_space();
        let start = sp.start_point();
        // Level 0 of a naive split is 1: nothing to move away.
        let d = Direction::SplitMove {
            axis: AxisRef::Spatial(1),
            from: 0,
            to: 1,
        };
        assert!(sp.apply(&start, d).is_none());
    }

    #[test]
    fn every_applicable_direction_yields_valid_config() {
        let sp = gpu_space();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let p = sp.random_point(&mut rng);
            p.validate(sp.op()).unwrap();
            for &d in sp.directions() {
                if let Some(n) = sp.apply(&p, d) {
                    n.validate(sp.op())
                        .unwrap_or_else(|e| panic!("direction {d:?} produced invalid config: {e}"));
                }
            }
        }
    }

    #[test]
    fn random_points_are_diverse_and_deterministic() {
        let sp = gpu_space();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = sp.random_point(&mut r1);
        let b = sp.random_point(&mut r2);
        assert_eq!(a, b);
        let c = sp.random_point(&mut r1);
        assert_ne!(a, c);
    }

    #[test]
    fn target_defaults_enforced() {
        let g = ops::gemm(64, 64, 64);
        let cpu = Space::new(&g, TargetKind::Cpu);
        let mut rng = StdRng::seed_from_u64(1);
        let p = cpu.random_point(&mut rng);
        assert!(!p.cache_shared, "CPU never uses shared memory");
        assert!(p.vectorize, "vectorize is pre-determined");
        let gpu = Space::new(&g, TargetKind::Gpu);
        let q = gpu.random_point(&mut rng);
        assert_eq!(q.fuse_outer, 2, "GPU fuses all outer loops to the grid");
    }

    #[test]
    fn direction_sets_differ_per_target() {
        let g = ops::gemm(64, 64, 64);
        let cpu = Space::new(&g, TargetKind::Cpu);
        let gpu = Space::new(&g, TargetKind::Gpu);
        let fpga = Space::new(&g, TargetKind::Fpga);
        assert!(cpu.directions().contains(&Direction::FuseMore));
        assert!(!gpu.directions().contains(&Direction::FuseMore));
        assert!(gpu.directions().contains(&Direction::ToggleCache));
        assert!(fpga.directions().contains(&Direction::PartitionUp));
        assert!(!cpu.directions().contains(&Direction::PartitionUp));
    }

    #[test]
    fn features_have_declared_dim() {
        let sp = gpu_space();
        let mut rng = StdRng::seed_from_u64(3);
        let p = sp.random_point(&mut rng);
        assert_eq!(sp.features(&p).len(), sp.feature_dim());
        // All features are finite and bounded.
        for f in sp.features(&p) {
            assert!(f.is_finite() && (-1.0..=2.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn unit_extent_axes_have_no_split_directions() {
        // batch = 1: axis b contributes no SplitMove directions.
        let sp = gpu_space();
        let has_b_moves = sp.directions().iter().any(|d| {
            matches!(
                d,
                Direction::SplitMove {
                    axis: AxisRef::Spatial(0),
                    ..
                }
            )
        });
        assert!(!has_b_moves);
    }
}
