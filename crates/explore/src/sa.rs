//! The evaluation history (the set `H` of §5.1) and the simulated-
//! annealing starting-point rule.
//!
//! FlexTensor keeps every evaluated point with its performance value `E`
//! and, at each exploration step, chooses starting points from `H` with
//! probability `∝ exp(-γ · (E* - E_p) / E*)` — points close to the current
//! best are chosen often, but worse points keep a temperature-controlled
//! chance, which is what lets the search escape local optima.

use std::collections::BTreeMap;

use flextensor_schedule::config::NodeConfig;
use rand::Rng;

/// The set `H`: every evaluated point and its performance value.
///
/// Backed by a `BTreeMap` so iteration (and therefore starting-point
/// sampling) is deterministic given the RNG seed.
///
/// Performance values are throughputs (`1 / seconds`), so higher is
/// better; infeasible points are recorded with `E = 0` to prevent
/// re-evaluation.
#[derive(Debug, Clone, Default)]
pub struct History {
    entries: BTreeMap<Vec<i64>, (NodeConfig, f64)>,
    best: Option<(NodeConfig, f64)>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Whether a point has already been evaluated.
    pub fn contains(&self, cfg: &NodeConfig) -> bool {
        self.entries.contains_key(&cfg.encode())
    }

    /// Records a point with its performance value `E` (0 = infeasible).
    pub fn record(&mut self, cfg: NodeConfig, e: f64) {
        if self.best.as_ref().is_none_or(|(_, b)| e > *b) && e > 0.0 {
            self.best = Some((cfg.clone(), e));
        }
        self.entries.insert(cfg.encode(), (cfg, e));
    }

    /// Performance value of a previously recorded point.
    pub fn value(&self, cfg: &NodeConfig) -> Option<f64> {
        self.entries.get(&cfg.encode()).map(|(_, e)| *e)
    }

    /// The best feasible point seen, with its performance value.
    pub fn best(&self) -> Option<(&NodeConfig, f64)> {
        self.best.as_ref().map(|(c, e)| (c, *e))
    }

    /// Number of evaluated points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Chooses `n` starting points (with replacement, deduplicated) using
    /// the simulated-annealing rule with temperature parameter `gamma`.
    ///
    /// Returns fewer than `n` points when `H` holds fewer distinct
    /// feasible candidates.
    pub fn select_starts(&self, n: usize, gamma: f64, rng: &mut impl Rng) -> Vec<NodeConfig> {
        self.select_starts_with_energy(n, gamma, rng)
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// [`History::select_starts`], but each chosen point is paired with
    /// its performance value `E` at selection time. The search drivers use
    /// this to log SA moves (start energy vs reached energy) without a
    /// second history lookup; the RNG draw sequence is identical to
    /// `select_starts`.
    pub fn select_starts_with_energy(
        &self,
        n: usize,
        gamma: f64,
        rng: &mut impl Rng,
    ) -> Vec<(NodeConfig, f64)> {
        let Some((_, e_star)) = self.best() else {
            return Vec::new();
        };
        let candidates: Vec<(&NodeConfig, f64, f64)> = self
            .entries
            .values()
            .map(|(c, e)| {
                let w = (-gamma * (e_star - e) / e_star.max(f64::MIN_POSITIVE)).exp();
                (c, *e, w)
            })
            .collect();
        let total: f64 = candidates.iter().map(|(_, _, w)| w).sum();
        let mut out: Vec<(NodeConfig, f64)> = Vec::new();
        for _ in 0..n {
            let mut t = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = candidates.last().map(|(c, e, _)| (*c, *e));
            for (c, e, w) in &candidates {
                if t < *w {
                    chosen = Some((c, *e));
                    break;
                }
                t -= w;
            }
            if let Some((c, e)) = chosen {
                if !out.iter().any(|(o, _)| o == c) {
                    out.push((c.clone(), e));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg_with_unroll(u: bool, cache: bool) -> NodeConfig {
        let g = ops::gemm(8, 8, 8);
        let mut c = NodeConfig::naive(g.root_op());
        c.unroll = u;
        c.cache_shared = cache;
        c
    }

    #[test]
    fn best_tracks_maximum_feasible() {
        let mut h = History::new();
        h.record(cfg_with_unroll(false, false), 10.0);
        h.record(cfg_with_unroll(true, false), 30.0);
        h.record(cfg_with_unroll(false, true), 0.0); // infeasible
        let (best, e) = h.best().unwrap();
        assert_eq!(e, 30.0);
        assert!(best.unroll);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn contains_and_value() {
        let mut h = History::new();
        let c = cfg_with_unroll(true, true);
        assert!(!h.contains(&c));
        h.record(c.clone(), 5.0);
        assert!(h.contains(&c));
        assert_eq!(h.value(&c), Some(5.0));
    }

    #[test]
    fn sa_prefers_good_points() {
        let mut h = History::new();
        let good = cfg_with_unroll(true, false);
        let bad = cfg_with_unroll(false, false);
        h.record(good.clone(), 100.0);
        h.record(bad.clone(), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut good_count = 0;
        for _ in 0..200 {
            let s = h.select_starts(1, 4.0, &mut rng);
            if s.first() == Some(&good) {
                good_count += 1;
            }
        }
        assert!(good_count > 150, "good chosen {good_count}/200");
    }

    #[test]
    fn high_temperature_explores_bad_points_sometimes() {
        let mut h = History::new();
        let good = cfg_with_unroll(true, false);
        let bad = cfg_with_unroll(false, false);
        h.record(good, 100.0);
        h.record(bad.clone(), 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut bad_count = 0;
        for _ in 0..300 {
            // gamma = 0: uniform selection.
            let s = h.select_starts(1, 0.0, &mut rng);
            if s.first() == Some(&bad) {
                bad_count += 1;
            }
        }
        assert!(
            (90..=210).contains(&bad_count),
            "expected ~150, got {bad_count}"
        );
    }

    #[test]
    fn empty_history_selects_nothing() {
        let h = History::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(h.select_starts(4, 1.0, &mut rng).is_empty());
    }

    #[test]
    fn select_with_energy_matches_plain_select() {
        let mut h = History::new();
        h.record(cfg_with_unroll(true, false), 10.0);
        h.record(cfg_with_unroll(false, false), 4.0);
        h.record(cfg_with_unroll(false, true), 0.0);
        let plain = h.select_starts(6, 2.0, &mut StdRng::seed_from_u64(7));
        let with_e = h.select_starts_with_energy(6, 2.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(
            plain,
            with_e.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>()
        );
        for (c, e) in &with_e {
            assert_eq!(h.value(c), Some(*e));
        }
    }

    #[test]
    fn select_dedups() {
        let mut h = History::new();
        h.record(cfg_with_unroll(true, false), 10.0);
        let mut rng = StdRng::seed_from_u64(3);
        let s = h.select_starts(5, 1.0, &mut rng);
        assert_eq!(s.len(), 1);
    }
}
