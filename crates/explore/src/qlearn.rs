//! The Q-learning direction selector (§5.1).
//!
//! States are schedule points (feature vectors from
//! [`Space::features`](crate::space::Space::features)), actions are the
//! space's [`Direction`](crate::space::Direction)s, and the reward for
//! moving from `p` to `e` is the normalized improvement
//! `(E_e - E_p) / E_p`. Q-values are predicted by a four-layer
//! fully-connected ReLU network trained online with AdaDelta; training
//! happens every five trials, against a frozen *target network* `Y` whose
//! parameters are refreshed from the online network `X` after each
//! training round (the stabilization of Mnih et al. 2015 the paper cites).

use std::collections::VecDeque;

use flextensor_nn::{AdaDelta, Mlp, MlpScratch, TrainScratch};
use rand::Rng;

/// One recorded transition: `(state, action, reward, next_state)`.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Features of the starting point `p`.
    pub state: Vec<f64>,
    /// Index of the direction taken.
    pub action: usize,
    /// Normalized reward `(E_e - E_p) / E_p`.
    pub reward: f64,
    /// Features of the reached point `e`.
    pub next_state: Vec<f64>,
}

/// The online Q-learning agent.
#[derive(Debug, Clone)]
pub struct QAgent {
    net: Mlp,        // X: trained online
    target_net: Mlp, // Y: frozen copy used for bootstrap targets
    opt: AdaDelta,
    /// Bounded FIFO replay buffer; a ring (`VecDeque`) so eviction of the
    /// oldest transition is O(1) instead of a whole-buffer shift.
    replay: VecDeque<Transition>,
    /// Ping-pong activation scratch for allocation-free inference.
    scratch: MlpScratch,
    /// Output buffer for [`QAgent::choose`]'s Q-value forward pass.
    q_buf: Vec<f64>,
    /// Bootstrap buffer for the target network's forward pass.
    boot_buf: Vec<f64>,
    /// Gradient/activation scratch reused across training rounds.
    train_scratch: TrainScratch,
    /// Reused per-round training targets (one row per minibatch sample).
    targets: Vec<Vec<f64>>,
    /// Discount factor (the paper's α).
    alpha: f64,
    /// ε-greedy exploration rate (annealed by [`QAgent::set_progress`]).
    epsilon: f64,
    /// Train every this many recorded trials (the paper uses 5).
    train_every: usize,
    trials_since_train: usize,
    num_actions: usize,
}

impl QAgent {
    /// Builds the agent for a `feature_dim`-dimensional state space with
    /// `num_actions` directions. The network is the paper's four
    /// fully-connected layers with ReLU.
    pub fn new(feature_dim: usize, num_actions: usize, rng: &mut impl Rng) -> QAgent {
        let hidden = 64;
        let dims = [feature_dim, hidden, hidden, hidden, num_actions];
        let net = Mlp::new(&dims, rng);
        let target_net = net.clone();
        let opt = AdaDelta::new(net.num_params());
        QAgent {
            net,
            target_net,
            opt,
            replay: VecDeque::new(),
            scratch: MlpScratch::new(),
            q_buf: Vec::new(),
            boot_buf: Vec::new(),
            train_scratch: TrainScratch::new(),
            targets: Vec::new(),
            alpha: 0.3,
            epsilon: 0.9,
            train_every: 5,
            trials_since_train: 0,
            num_actions,
        }
    }

    /// Number of actions (directions) the agent chooses among.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Current ε of the ε-greedy policy (after any annealing), for
    /// telemetry and diagnostics.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Anneals the exploration rate: ε decays from 0.9 to 0.05 as search
    /// progress (0..1) advances. An untrained Q-network's argmax is an
    /// arbitrary bias, so early exploration must dominate; once the
    /// network has seen rewards, exploitation takes over.
    pub fn set_progress(&mut self, progress: f64) {
        let p = progress.clamp(0.0, 1.0);
        self.epsilon = 0.05 + 0.85 * (-4.0 * p).exp();
    }

    /// Q-values of every action at a state.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.net.forward(state)
    }

    /// ε-greedy action choice among the available actions (mask of
    /// applicable directions). Returns `None` when nothing is available.
    /// Takes `&mut self` for the agent's inference scratch buffers —
    /// allocation-free on the exploration hot path.
    pub fn choose(
        &mut self,
        state: &[f64],
        available: &[bool],
        rng: &mut impl Rng,
    ) -> Option<usize> {
        let is_avail = |a: usize| available.get(a).copied().unwrap_or(false);
        let avail_count = (0..self.num_actions).filter(|&a| is_avail(a)).count();
        if avail_count == 0 {
            return None;
        }
        if rng.gen_bool(self.epsilon) {
            let k = rng.gen_range(0..avail_count);
            return (0..self.num_actions).filter(|&a| is_avail(a)).nth(k);
        }
        self.net
            .forward_into(state, &mut self.scratch, &mut self.q_buf);
        let q = &self.q_buf;
        (0..self.num_actions)
            .filter(|&a| is_avail(a))
            .max_by(|&a, &b| q[a].partial_cmp(&q[b]).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Records a transition for later training.
    pub fn record(&mut self, t: Transition) {
        // Bounded replay: keep the most recent 4096 transitions.
        if self.replay.len() >= 4096 {
            self.replay.pop_front();
        }
        self.replay.push_back(t);
    }

    /// Signals the end of one exploration trial; every `train_every`
    /// trials the online network is trained on a random replay minibatch
    /// and the target network refreshed. Returns the training loss when
    /// training ran.
    pub fn end_trial(&mut self, rng: &mut impl Rng) -> Option<f64> {
        self.trials_since_train += 1;
        if self.trials_since_train < self.train_every || self.replay.is_empty() {
            return None;
        }
        self.trials_since_train = 0;
        // Batch: 64 transitions sampled uniformly from the replay buffer —
        // by index, so no transition is cloned per round.
        let indices: Vec<usize> = if self.replay.len() <= 64 {
            (0..self.replay.len()).collect()
        } else {
            (0..64)
                .map(|_| rng.gen_range(0..self.replay.len()))
                .collect()
        };
        if self.targets.len() < indices.len() {
            self.targets.resize(indices.len(), Vec::new());
        }
        for (row, &i) in indices.iter().enumerate() {
            // target = α·max_a Y(e)[a] + r, on the taken action; other
            // actions keep the online net's own predictions (so only the
            // taken action's error backpropagates meaningfully).
            let t = &self.replay[i];
            self.net
                .forward_into(&t.state, &mut self.scratch, &mut self.targets[row]);
            self.target_net
                .forward_into(&t.next_state, &mut self.scratch, &mut self.boot_buf);
            let bootstrap = self
                .boot_buf
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            self.targets[row][t.action] = self.alpha * bootstrap + t.reward;
        }
        let xs: Vec<&[f64]> = indices
            .iter()
            .map(|&i| self.replay[i].state.as_slice())
            .collect();
        let ys: Vec<&[f64]> = self.targets[..indices.len()]
            .iter()
            .map(Vec::as_slice)
            .collect();
        // Several gradient steps per round: the batch is tiny, so a single
        // AdaDelta step learns almost nothing.
        let mut loss = 0.0;
        for _ in 0..8 {
            loss = self
                .net
                .train_batch_with(&xs, &ys, &mut self.opt, &mut self.train_scratch);
        }
        // Copy X -> Y (the paper: "the parameters of X are copied to
        // network Y as a backup").
        self.target_net.copy_params_from(&self.net);
        Some(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn choose_respects_availability() {
        let mut r = rng(0);
        let mut agent = QAgent::new(4, 3, &mut r);
        let s = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(agent.choose(&s, &[false, true, false], &mut r), Some(1));
        assert_eq!(agent.choose(&s, &[false, false, false], &mut r), None);
    }

    #[test]
    fn training_runs_every_five_trials() {
        let mut r = rng(1);
        let mut agent = QAgent::new(2, 2, &mut r);
        agent.record(Transition {
            state: vec![0.0, 0.0],
            action: 0,
            reward: 1.0,
            next_state: vec![1.0, 0.0],
        });
        let mut r2 = rng(9);
        for trial in 1..=10 {
            let trained = agent.end_trial(&mut r2).is_some();
            assert_eq!(trained, trial % 5 == 0, "trial {trial}");
        }
    }

    #[test]
    fn learns_to_prefer_rewarding_action() {
        let mut r = rng(2);
        let mut agent = QAgent::new(2, 2, &mut r);
        agent.epsilon = 0.0;
        let s = vec![0.5, 0.5];
        let s2 = vec![0.6, 0.5];
        // Action 0 always yields +1, action 1 always -1.
        for _ in 0..400 {
            agent.record(Transition {
                state: s.clone(),
                action: 0,
                reward: 1.0,
                next_state: s2.clone(),
            });
            agent.record(Transition {
                state: s.clone(),
                action: 1,
                reward: -1.0,
                next_state: s2.clone(),
            });
            agent.trials_since_train = agent.train_every; // force training
            agent.end_trial(&mut r);
        }
        let q = agent.q_values(&s);
        assert!(q[0] > q[1], "Q-values {q:?}");
        assert_eq!(agent.choose(&s, &[true, true], &mut r), Some(0));
    }

    #[test]
    fn replay_is_bounded() {
        let mut r = rng(3);
        let mut agent = QAgent::new(1, 1, &mut r);
        for i in 0..5000 {
            agent.record(Transition {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: vec![i as f64],
            });
        }
        assert!(agent.replay.len() <= 4096);
    }

    #[test]
    fn ring_replay_evicts_oldest_first() {
        // The ring buffer must keep exactly the FIFO semantics of the old
        // `Vec::remove(0)` implementation: after overflow, the buffer
        // holds the most recent 4096 transitions in insertion order.
        let mut r = rng(4);
        let mut agent = QAgent::new(1, 1, &mut r);
        for i in 0..5000 {
            agent.record(Transition {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: vec![i as f64],
            });
        }
        assert_eq!(agent.replay.len(), 4096);
        // 5000 - 4096 = 904 oldest transitions were evicted.
        assert_eq!(agent.replay.front().unwrap().state, vec![904.0]);
        assert_eq!(agent.replay.back().unwrap().state, vec![4999.0]);
        for (k, t) in agent.replay.iter().enumerate() {
            assert_eq!(t.state[0], (904 + k) as f64);
        }
    }
}
