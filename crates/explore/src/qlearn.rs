//! The Q-learning direction selector (§5.1).
//!
//! States are schedule points (feature vectors from
//! [`Space::features`](crate::space::Space::features)), actions are the
//! space's [`Direction`](crate::space::Direction)s, and the reward for
//! moving from `p` to `e` is the normalized improvement
//! `(E_e - E_p) / E_p`. Q-values are predicted by a four-layer
//! fully-connected ReLU network trained online with AdaDelta; training
//! happens every five trials, against a frozen *target network* `Y` whose
//! parameters are refreshed from the online network `X` after each
//! training round (the stabilization of Mnih et al. 2015 the paper cites).

use flextensor_nn::{AdaDelta, Mlp};
use rand::Rng;

/// One recorded transition: `(state, action, reward, next_state)`.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Features of the starting point `p`.
    pub state: Vec<f64>,
    /// Index of the direction taken.
    pub action: usize,
    /// Normalized reward `(E_e - E_p) / E_p`.
    pub reward: f64,
    /// Features of the reached point `e`.
    pub next_state: Vec<f64>,
}

/// The online Q-learning agent.
#[derive(Debug, Clone)]
pub struct QAgent {
    net: Mlp,        // X: trained online
    target_net: Mlp, // Y: frozen copy used for bootstrap targets
    opt: AdaDelta,
    replay: Vec<Transition>,
    /// Discount factor (the paper's α).
    alpha: f64,
    /// ε-greedy exploration rate (annealed by [`QAgent::set_progress`]).
    epsilon: f64,
    /// Train every this many recorded trials (the paper uses 5).
    train_every: usize,
    trials_since_train: usize,
    num_actions: usize,
}

impl QAgent {
    /// Builds the agent for a `feature_dim`-dimensional state space with
    /// `num_actions` directions. The network is the paper's four
    /// fully-connected layers with ReLU.
    pub fn new(feature_dim: usize, num_actions: usize, rng: &mut impl Rng) -> QAgent {
        let hidden = 64;
        let dims = [feature_dim, hidden, hidden, hidden, num_actions];
        let net = Mlp::new(&dims, rng);
        let target_net = net.clone();
        let opt = AdaDelta::new(net.num_params());
        QAgent {
            net,
            target_net,
            opt,
            replay: Vec::new(),
            alpha: 0.3,
            epsilon: 0.9,
            train_every: 5,
            trials_since_train: 0,
            num_actions,
        }
    }

    /// Number of actions (directions) the agent chooses among.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Current ε of the ε-greedy policy (after any annealing), for
    /// telemetry and diagnostics.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Anneals the exploration rate: ε decays from 0.9 to 0.05 as search
    /// progress (0..1) advances. An untrained Q-network's argmax is an
    /// arbitrary bias, so early exploration must dominate; once the
    /// network has seen rewards, exploitation takes over.
    pub fn set_progress(&mut self, progress: f64) {
        let p = progress.clamp(0.0, 1.0);
        self.epsilon = 0.05 + 0.85 * (-4.0 * p).exp();
    }

    /// Q-values of every action at a state.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.net.forward(state)
    }

    /// ε-greedy action choice among the available actions (mask of
    /// applicable directions). Returns `None` when nothing is available.
    pub fn choose(&self, state: &[f64], available: &[bool], rng: &mut impl Rng) -> Option<usize> {
        let avail: Vec<usize> = (0..self.num_actions)
            .filter(|&a| available.get(a).copied().unwrap_or(false))
            .collect();
        if avail.is_empty() {
            return None;
        }
        if rng.gen_bool(self.epsilon) {
            return Some(avail[rng.gen_range(0..avail.len())]);
        }
        let q = self.q_values(state);
        avail
            .into_iter()
            .max_by(|&a, &b| q[a].partial_cmp(&q[b]).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Records a transition for later training.
    pub fn record(&mut self, t: Transition) {
        // Bounded replay: keep the most recent 4096 transitions.
        if self.replay.len() >= 4096 {
            self.replay.remove(0);
        }
        self.replay.push(t);
    }

    /// Signals the end of one exploration trial; every `train_every`
    /// trials the online network is trained on a random replay minibatch
    /// and the target network refreshed. Returns the training loss when
    /// training ran.
    pub fn end_trial(&mut self, rng: &mut impl Rng) -> Option<f64> {
        self.trials_since_train += 1;
        if self.trials_since_train < self.train_every || self.replay.is_empty() {
            return None;
        }
        self.trials_since_train = 0;
        // Batch: 64 transitions sampled uniformly from the replay buffer.
        let batch: Vec<Transition> = if self.replay.len() <= 64 {
            self.replay.clone()
        } else {
            (0..64)
                .map(|_| self.replay[rng.gen_range(0..self.replay.len())].clone())
                .collect()
        };
        let batch = &batch[..];
        let mut xs = Vec::with_capacity(batch.len());
        let mut ys = Vec::with_capacity(batch.len());
        for t in batch {
            // target = α·max_a Y(e)[a] + r, on the taken action; other
            // actions keep the online net's own predictions (so only the
            // taken action's error backpropagates meaningfully).
            let mut y = self.net.forward(&t.state);
            let bootstrap = self
                .target_net
                .forward(&t.next_state)
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max);
            y[t.action] = self.alpha * bootstrap + t.reward;
            xs.push(t.state.clone());
            ys.push(y);
        }
        // Several gradient steps per round: the batch is tiny, so a single
        // AdaDelta step learns almost nothing.
        let mut loss = 0.0;
        for _ in 0..8 {
            loss = self.net.train_batch(&xs, &ys, &mut self.opt);
        }
        // Copy X -> Y (the paper: "the parameters of X are copied to
        // network Y as a backup").
        self.target_net.copy_params_from(&self.net);
        Some(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn choose_respects_availability() {
        let mut r = rng(0);
        let agent = QAgent::new(4, 3, &mut r);
        let s = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(agent.choose(&s, &[false, true, false], &mut r), Some(1));
        assert_eq!(agent.choose(&s, &[false, false, false], &mut r), None);
    }

    #[test]
    fn training_runs_every_five_trials() {
        let mut r = rng(1);
        let mut agent = QAgent::new(2, 2, &mut r);
        agent.record(Transition {
            state: vec![0.0, 0.0],
            action: 0,
            reward: 1.0,
            next_state: vec![1.0, 0.0],
        });
        let mut r2 = rng(9);
        for trial in 1..=10 {
            let trained = agent.end_trial(&mut r2).is_some();
            assert_eq!(trained, trial % 5 == 0, "trial {trial}");
        }
    }

    #[test]
    fn learns_to_prefer_rewarding_action() {
        let mut r = rng(2);
        let mut agent = QAgent::new(2, 2, &mut r);
        agent.epsilon = 0.0;
        let s = vec![0.5, 0.5];
        let s2 = vec![0.6, 0.5];
        // Action 0 always yields +1, action 1 always -1.
        for _ in 0..400 {
            agent.record(Transition {
                state: s.clone(),
                action: 0,
                reward: 1.0,
                next_state: s2.clone(),
            });
            agent.record(Transition {
                state: s.clone(),
                action: 1,
                reward: -1.0,
                next_state: s2.clone(),
            });
            agent.trials_since_train = agent.train_every; // force training
            agent.end_trial(&mut r);
        }
        let q = agent.q_values(&s);
        assert!(q[0] > q[1], "Q-values {q:?}");
        assert_eq!(agent.choose(&s, &[true, true], &mut r), Some(0));
    }

    #[test]
    fn replay_is_bounded() {
        let mut r = rng(3);
        let mut agent = QAgent::new(1, 1, &mut r);
        for i in 0..5000 {
            agent.record(Transition {
                state: vec![i as f64],
                action: 0,
                reward: 0.0,
                next_state: vec![i as f64],
            });
        }
        assert!(agent.replay.len() <= 4096);
    }
}
