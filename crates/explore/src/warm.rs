//! Warm-start seed adaptation: fitting a stored configuration (possibly
//! tuned for a *different* shape of the same operator family) onto the
//! current op so it can join the trial-0 seed batch.
//!
//! A neighbor's encoding rarely validates as-is — its split factors
//! multiply to the neighbor's extents, not ours. Adaptation keeps the
//! *structure* of the tiling and re-fits the numbers:
//!
//! * each axis keeps the largest divisor of its extent that each stored
//!   outer factor provides (`gcd(factor, remaining)`), with the innermost
//!   level absorbing the remainder — so the product is exactly the new
//!   extent and every factor stays positive;
//! * the reorder permutation and fuse depth transfer verbatim when valid
//!   for this op, otherwise fall back to the naive defaults;
//! * boolean toggles (unroll, vectorize, cache, inline) transfer as
//!   truthiness; FPGA parameters transfer when in range.
//!
//! The whole procedure is a pure function of `(op, encoding)` — no RNG —
//! so warm-started searches stay bit-for-bit deterministic.

use flextensor_ir::graph::ComputeOp;
use flextensor_schedule::config::{NodeConfig, REDUCE_PARTS, SPATIAL_PARTS};

/// Adapts a stored config encoding onto `op`. Returns `None` when the
/// encoding's structure cannot fit the op at all (wrong axis counts).
/// The returned config always validates against `op`.
pub fn adapt_encoding(op: &ComputeOp, encoding: &[i64]) -> Option<NodeConfig> {
    // Exact fit first: an encoding recorded for this very shape.
    if let Ok(cfg) = NodeConfig::decode(op, encoding) {
        if cfg.validate(op).is_ok() {
            return Some(cfg);
        }
    }
    let ns = op.spatial.len();
    let nr = op.reduce.len();
    if encoding.len() != ns * SPATIAL_PARTS + nr * REDUCE_PARTS + ns + 7 {
        return None;
    }
    let mut cfg = NodeConfig::naive(op);
    let mut pos = 0usize;
    for (i, axis) in op.spatial.iter().enumerate() {
        cfg.spatial_splits[i] = refit(&encoding[pos..pos + SPATIAL_PARTS], axis.extent);
        pos += SPATIAL_PARTS;
    }
    for (i, axis) in op.reduce.iter().enumerate() {
        cfg.reduce_splits[i] = refit(&encoding[pos..pos + REDUCE_PARTS], axis.extent);
        pos += REDUCE_PARTS;
    }
    let reorder = &encoding[pos..pos + ns];
    pos += ns;
    if is_permutation(reorder, ns) {
        cfg.reorder = reorder.iter().map(|&x| x as usize).collect();
    }
    let rest = &encoding[pos..pos + 7];
    if rest[0] >= 1 && rest[0] as usize <= ns {
        cfg.fuse_outer = rest[0] as usize;
    }
    cfg.unroll = rest[1] != 0;
    cfg.vectorize = rest[2] != 0;
    cfg.cache_shared = rest[3] != 0;
    cfg.inline_data = rest[4] != 0;
    if rest[5] >= 1 {
        cfg.fpga_partition = rest[5];
    }
    if (1..=3).contains(&rest[6]) {
        cfg.fpga_pipeline = rest[6];
    }
    if cfg.validate(op).is_ok() {
        Some(cfg)
    } else {
        // Structural transfer failed a semantic rule (e.g. an op-specific
        // constraint): fall back to the factor structure alone.
        let mut plain = NodeConfig::naive(op);
        plain.spatial_splits = cfg.spatial_splits;
        plain.reduce_splits = cfg.reduce_splits;
        plain.validate(op).is_ok().then_some(plain)
    }
}

/// Re-fits stored split factors onto an axis of extent `extent`: outer
/// levels keep `gcd(factor, remaining)`, the innermost level absorbs the
/// remainder. The result is always `parts` positive factors multiplying
/// to exactly `extent`.
fn refit(factors: &[i64], extent: i64) -> Vec<i64> {
    let parts = factors.len();
    let mut out = vec![1i64; parts];
    let mut rem = extent.max(1);
    for (slot, &f) in out.iter_mut().zip(factors).take(parts - 1) {
        let d = gcd(f.max(1), rem);
        *slot = d;
        rem /= d;
    }
    out[parts - 1] = rem;
    out
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

fn is_permutation(xs: &[i64], n: usize) -> bool {
    let mut seen = vec![false; n];
    if xs.len() != n {
        return false;
    }
    for &x in xs {
        if x < 0 || x as usize >= n || seen[x as usize] {
            return false;
        }
        seen[x as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;

    #[test]
    fn exact_encodings_pass_through() {
        let g = ops::gemm(16, 24, 12);
        let op = g.root_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.spatial_splits[0] = vec![2, 2, 2, 2];
        cfg.unroll = true;
        cfg.validate(op).unwrap();
        let adapted = adapt_encoding(op, &cfg.encode()).unwrap();
        assert_eq!(adapted, cfg);
    }

    #[test]
    fn neighbor_shapes_are_refitted() {
        // Tune-like config for gemm(32, 32, 32)...
        let src = ops::gemm(32, 32, 32);
        let mut cfg = NodeConfig::naive(src.root_op());
        cfg.spatial_splits = vec![vec![2, 4, 2, 2], vec![1, 8, 2, 2]];
        cfg.reduce_splits = vec![vec![4, 4, 2]];
        cfg.reorder = vec![1, 0];
        cfg.unroll = true;
        cfg.cache_shared = true;
        cfg.validate(src.root_op()).unwrap();
        // ... adapted onto gemm(64, 48, 20).
        let dst = ops::gemm(64, 48, 20);
        let adapted = adapt_encoding(dst.root_op(), &cfg.encode()).unwrap();
        adapted.validate(dst.root_op()).unwrap();
        // Structure transferred: the outer tiling survives where divisors
        // allow, booleans and reorder transfer verbatim.
        assert_eq!(adapted.reorder, vec![1, 0]);
        assert!(adapted.unroll && adapted.cache_shared);
        assert_eq!(adapted.spatial_splits[0].iter().product::<i64>(), 64);
        assert_eq!(adapted.spatial_splits[1].iter().product::<i64>(), 48);
        assert_eq!(adapted.reduce_splits[0].iter().product::<i64>(), 20);
        assert_eq!(adapted.spatial_splits[0][..2], [2, 4]);
    }

    #[test]
    fn wrong_arity_encodings_are_rejected() {
        let gemm = ops::gemm(8, 8, 8);
        let conv = ops::conv2d(ops::ConvParams::same(1, 4, 8, 3), 6, 6);
        let enc = NodeConfig::naive(conv.anchor_op()).encode();
        assert!(adapt_encoding(gemm.root_op(), &enc).is_none());
        assert!(adapt_encoding(gemm.root_op(), &[]).is_none());
    }

    #[test]
    fn garbage_fields_fall_back_to_naive_defaults() {
        let g = ops::gemm(8, 8, 8);
        let op = g.root_op();
        let mut enc = NodeConfig::naive(op).encode();
        let n = enc.len();
        enc[n - 7] = 99; // fuse depth out of range
        enc[n - 1] = 42; // pipeline out of range
        enc[n - 2] = -3; // partition non-positive
        let adapted = adapt_encoding(op, &enc).unwrap();
        assert_eq!(adapted.fuse_outer, 1);
        assert_eq!(adapted.fpga_pipeline, 1);
        assert_eq!(adapted.fpga_partition, 1);
        adapted.validate(op).unwrap();
    }

    #[test]
    fn adaptation_is_deterministic() {
        let src = ops::gemm(32, 32, 32);
        let mut cfg = NodeConfig::naive(src.root_op());
        cfg.spatial_splits = vec![vec![2, 4, 2, 2], vec![1, 8, 2, 2]];
        cfg.validate(src.root_op()).unwrap();
        let dst = ops::gemm(48, 48, 48);
        let a = adapt_encoding(dst.root_op(), &cfg.encode()).unwrap();
        let b = adapt_encoding(dst.root_op(), &cfg.encode()).unwrap();
        assert_eq!(a.encode(), b.encode());
    }
}
