//! # flextensor-explore
//!
//! The back-end of the FlexTensor reproduction: schedule-space generation
//! and heuristic + machine-learning exploration (§4.2, §5.1).
//!
//! * [`space`] — the pruned, high-dimensionally rearranged schedule space:
//!   points are `NodeConfig`s, neighborhoods are [`Direction`]s
//!   (prime-factor moves between split levels, reorder swaps, primitive
//!   toggles), with hardware-fixed decisions per target.
//! * [`sa`] — the evaluated-point set `H` and the simulated-annealing
//!   starting-point rule `P(p) ∝ exp(-γ(E* - E_p)/E*)`.
//! * [`qlearn`] — the Q-learning direction selector: a four-layer
//!   fully-connected ReLU network trained online with AdaDelta against a
//!   target network.
//! * [`methods`] — the search drivers: Q-method, P-method (all
//!   directions), and a random-walk ablation, with exploration-time
//!   accounting modeling the real system's per-measurement cost.
//! * [`pool`] — the parallel, memoized evaluation layer: a persistent
//!   worker pool fanning each trial's candidate batch out over
//!   `eval_workers` threads, with a concurrent memo cache so repeat
//!   visits cost zero modeled and zero real time. Results reduce in
//!   fixed candidate order, so searches are deterministic in the worker
//!   count.
//!
//! Every driver can additionally stream structured telemetry — trial
//! lifecycle, per-candidate evaluations, SA moves, Q-network training,
//! pool statistics — through the [`telemetry`] re-export
//! (`flextensor-telemetry`): attach a sink via
//! [`SearchOptions::telemetry`](methods::SearchOptions), record a JSONL
//! trace, and replay it offline into the identical run summary (see
//! `docs/TRACE_FORMAT.md`).
//!
//! # Examples
//!
//! ```
//! use flextensor_ir::ops;
//! use flextensor_sim::{model::Evaluator, spec::{Device, v100}};
//! use flextensor_explore::methods::{search, Method, SearchOptions};
//!
//! let g = ops::gemm(256, 256, 256);
//! let ev = Evaluator::new(Device::Gpu(v100()));
//! let opts = SearchOptions { trials: 10, ..SearchOptions::default() };
//! let result = search(&g, &ev, Method::QMethod, &opts)?;
//! assert!(result.best_cost.gflops() > 0.0);
//! # Ok::<(), flextensor_explore::methods::SearchError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod methods;
pub mod pool;
pub mod qlearn;
pub mod sa;
pub mod space;
pub mod sweep;
pub mod warm;

/// The structured trace/event layer (`flextensor-telemetry`), re-exported
/// so explorer users can attach sinks without a separate dependency.
pub use flextensor_telemetry as telemetry;

pub use flextensor_telemetry::{JsonlSink, MemorySink, NullSink, Telemetry, TraceEvent, TraceSink};
pub use methods::{search, Method, SearchOptions, SearchResult, TracePoint};
pub use pool::{EvalOutcome, EvalPool, EvalStats, MemoCache};
pub use sa::History;
pub use space::{Direction, Space};
