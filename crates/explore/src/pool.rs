//! Parallel, memoized candidate evaluation (§5.2's parallel back-end).
//!
//! The real FlexTensor amortizes its ≤ 1 s compile+measure overhead by
//! evaluating a trial's candidate points concurrently. This module is the
//! reproduction's equivalent for the analytical evaluator:
//!
//! * [`MemoCache`] — a concurrent (sharded, `Send + Sync`) memo table
//!   keyed on the canonical [`NodeConfig::encode`] form, with hit/miss
//!   counters, so repeat visits cost zero modeled and zero real time;
//! * [`EvalPool`] — a persistent worker pool that fans a batch of
//!   candidate points out over `eval_workers` threads and reduces the
//!   results in the **fixed candidate order**, so every search driver
//!   built on it is bit-for-bit deterministic in the worker count.
//!
//! Workers evaluate through a shared split-phase
//! [`LoweredTemplate`]: the config-independent half of
//! lowering is computed once when the pool is built, and each candidate
//! only pays the cheap config-apply step (identical results to a full
//! re-lowering — see `docs/PERFORMANCE.md`). The re-lowering path is kept
//! behind [`EvalPool::new_reference`] for differential tests and the
//! `probe_perf` baseline.
//!
//! Determinism argument: the evaluator is a pure function of
//! `(graph, config)`, candidate batches are constructed before any
//! evaluation starts, per-candidate results land in pre-assigned slots,
//! and all cache bookkeeping happens on the coordinating thread in batch
//! order. Thread scheduling can therefore change *wall-clock time only*,
//! never a result or a counter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flextensor_ir::graph::Graph;
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::model::{Cost, Evaluator};
use flextensor_telemetry::{Telemetry, TraceEvent};

/// Number of independent shards in a [`MemoCache`]; bounds coordinator /
/// worker contention when the cache is shared across threads.
const CACHE_SHARDS: usize = 16;

/// A concurrent, bounded memo table for evaluation results.
///
/// Keys are the canonical integer encoding of a schedule point
/// ([`NodeConfig::encode`]); values are the evaluator's verdict, including
/// `None` for infeasible points, so infeasibility is memoized too.
///
/// Bounding: each shard holds at most `capacity / CACHE_SHARDS` entries
/// and is *flushed* (generationally cleared) when an insert would
/// overflow it — simple, allocation-friendly, and deterministic as long
/// as inserts happen in a deterministic order.
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<HashMap<Vec<i64>, Option<Cost>>>>,
    per_shard_capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MemoCache {
    /// A cache holding at most (approximately) `capacity` entries.
    pub fn new(capacity: usize) -> MemoCache {
        MemoCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_capacity: (capacity / CACHE_SHARDS).max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &[i64]) -> &Mutex<HashMap<Vec<i64>, Option<Cost>>> {
        // FNV-1a over the key words; stable across platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in key {
            h ^= w as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % CACHE_SHARDS as u64) as usize]
    }

    /// Looks a key up **without** touching the hit/miss counters (the
    /// counters record lookups-with-intent, see [`MemoCache::count_hits`]).
    pub fn peek(&self, key: &[i64]) -> Option<Option<Cost>> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .copied()
    }

    /// Inserts an evaluation result, flushing the target shard first when
    /// it is at capacity.
    pub fn insert(&self, key: Vec<i64>, value: Option<Cost>) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(&key) {
            shard.clear();
        }
        shard.insert(key, value);
    }

    /// Records `n` lookups answered from the cache.
    pub fn count_hits(&self, n: usize) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` lookups that required a fresh evaluation.
    pub fn count_misses(&self, n: usize) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh evaluation so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Per-search evaluation statistics, surfaced through
/// [`SearchResult`](crate::methods::SearchResult) and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalStats {
    /// Fresh evaluations resolved by this pool (cache misses). Includes
    /// candidates the analyzer gate rejected statically; those are also
    /// counted in `pruned`.
    pub evaluated: usize,
    /// Lookups answered from the memo cache.
    pub cache_hits: usize,
    /// Lookups that required a fresh evaluation.
    pub cache_misses: usize,
    /// Candidates the static analyzer gate rejected before the cost model
    /// ran (always 0 when the gate is off).
    pub pruned: usize,
    /// Worker threads used for evaluation.
    pub workers: usize,
    /// Real time spent inside batched evaluation, seconds.
    pub wall_clock_s: f64,
}

impl EvalStats {
    /// Total cache lookups.
    ///
    /// ```
    /// use flextensor_explore::pool::EvalStats;
    ///
    /// let stats = EvalStats {
    ///     evaluated: 40,
    ///     cache_hits: 10,
    ///     cache_misses: 40,
    ///     pruned: 0,
    ///     workers: 4,
    ///     wall_clock_s: 0.2,
    /// };
    /// assert_eq!(stats.lookups(), 50);
    /// assert!((stats.hit_rate() - 0.2).abs() < 1e-12);
    /// ```
    pub fn lookups(&self) -> usize {
        self.cache_hits + self.cache_misses
    }

    /// Fraction of lookups answered from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups() as f64
        }
    }
}

/// The outcome of one candidate in a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// The evaluator's verdict (`None` = infeasible).
    pub cost: Option<Cost>,
    /// `true` when this batch ran the evaluator for the point; `false`
    /// when the memo cache (or an earlier duplicate in the same batch)
    /// already knew the answer. Fresh evaluations are the ones that cost
    /// modeled measurement time.
    pub fresh: bool,
    /// `true` when the static analyzer gate rejected the point before the
    /// cost model ran (implies `cost == None`; such candidates cost no
    /// modeled measurement time).
    pub pruned: bool,
}

/// What workers need to evaluate a point; shared immutably.
struct EvalCtx {
    graph: Graph,
    evaluator: Evaluator,
    /// Split-phase lowering template for `graph` on the evaluator's
    /// target: the config-independent half of lowering, built once per
    /// pool and shared by every worker (see `flextensor_schedule::template`).
    template: LoweredTemplate,
    /// `false` only in reference pools ([`EvalPool::new_reference`]),
    /// which re-lower every candidate from scratch for differential
    /// testing and perf-probe baselines.
    use_template: bool,
    /// When `true`, candidates whose features trip an `Error`-level
    /// static-analysis rule are rejected before the cost model runs.
    /// Sound by `flextensor_analyze::gate_rejects`'s contract: a rejected
    /// candidate would have evaluated to `None` anyway, so gating never
    /// changes a cost — only whether modeled measurement time is spent.
    analyzer_gate: bool,
}

impl EvalCtx {
    /// Evaluates one point; the second component reports a gate rejection.
    fn eval(&self, cfg: &NodeConfig) -> (Option<Cost>, bool) {
        if !self.analyzer_gate {
            let cost = if self.use_template {
                self.evaluator.evaluate_template(&self.template, cfg)
            } else {
                self.evaluator.evaluate(&self.graph, cfg)
            };
            return (cost, false);
        }
        // Gated path: derive features once, consult the analyzer, and only
        // then run the cost model — on the same features, so costs are
        // bit-identical to the ungated path.
        let (features, flops) = if self.use_template {
            (
                self.template.features(cfg).ok(),
                self.template.graph_flops(),
            )
        } else {
            let target = self.evaluator.target();
            (
                flextensor_schedule::lower::lower(&self.graph, cfg, target)
                    .ok()
                    .map(|k| k.features),
                self.graph.flops(),
            )
        };
        let Some(features) = features else {
            // Invalid for the graph (a config-level legality error).
            return (None, true);
        };
        if flextensor_analyze::gate_rejects(self.evaluator.device(), &features).is_some() {
            return (None, true);
        }
        let cost = self
            .evaluator
            .time_features(&features)
            .map(|seconds| Cost { seconds, flops });
        (cost, false)
    }
}

/// One dispatched batch: workers claim indices from `next` and write into
/// their pre-assigned `results` slot, keeping the reduction order fixed.
struct BatchJob {
    configs: Vec<NodeConfig>,
    next: AtomicUsize,
    results: Vec<OnceLock<(Option<Cost>, bool)>>,
}

/// A persistent pool of evaluation workers with a memo cache in front.
///
/// Created once per search; workers live until the pool is dropped, so
/// per-batch dispatch costs one channel send per worker rather than a
/// thread spawn per candidate.
pub struct EvalPool {
    ctx: Arc<EvalCtx>,
    cache: Arc<MemoCache>,
    workers: usize,
    senders: Vec<Sender<Arc<BatchJob>>>,
    done_rx: Option<Receiver<()>>,
    handles: Vec<JoinHandle<()>>,
    evaluated: usize,
    pruned: usize,
    wall_clock: Duration,
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("workers", &self.workers)
            .field("evaluated", &self.evaluated)
            .finish_non_exhaustive()
    }
}

/// Resolves an `eval_workers` option: 0 means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

impl EvalPool {
    /// A pool of `workers` threads (0 = all cores; 1 = evaluate on the
    /// calling thread, no threads spawned) with a fresh memo cache of
    /// `cache_capacity` entries.
    pub fn new(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
    ) -> EvalPool {
        EvalPool::with_cache(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
        )
    }

    /// A pool like [`EvalPool::new`] with the static analyzer gate
    /// enabled: candidates whose lowered features trip an `Error`-level
    /// `flextensor-analyze` legality rule are rejected *before* the cost
    /// model runs ([`EvalOutcome::pruned`], [`EvalStats::pruned`]).
    /// Because the gate only rejects candidates the evaluator would have
    /// scored `None`, every returned cost is bit-identical to an ungated
    /// pool's.
    pub fn new_gated(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
    ) -> EvalPool {
        EvalPool::build(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
            true,
            true,
        )
    }

    /// A reference pool that re-lowers every candidate from scratch
    /// instead of applying the cached [`LoweredTemplate`]. Results are
    /// bit-identical to [`EvalPool::new`] (both paths share one feature
    /// computation); this exists so differential tests and the
    /// `probe_perf` baseline can measure the fast path against it. Not
    /// for production searches.
    pub fn new_reference(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
    ) -> EvalPool {
        EvalPool::build(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
            false,
            false,
        )
    }

    /// A pool sharing an existing memo cache (e.g. across searches over
    /// the same graph and device).
    pub fn with_cache(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache: Arc<MemoCache>,
    ) -> EvalPool {
        EvalPool::build(graph, evaluator, workers, cache, true, false)
    }

    fn build(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache: Arc<MemoCache>,
        use_template: bool,
        analyzer_gate: bool,
    ) -> EvalPool {
        let workers = resolve_workers(workers);
        let ctx = Arc::new(EvalCtx {
            graph: graph.clone(),
            evaluator: evaluator.clone(),
            template: LoweredTemplate::new(graph, evaluator.target()),
            use_template,
            analyzer_gate,
        });
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        let mut done_rx = None;
        if workers > 1 {
            let (done_tx, rx) = channel::<()>();
            done_rx = Some(rx);
            for _ in 0..workers {
                let (tx, job_rx) = channel::<Arc<BatchJob>>();
                senders.push(tx);
                let ctx = Arc::clone(&ctx);
                let done_tx = done_tx.clone();
                handles.push(std::thread::spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        loop {
                            let i = job.next.fetch_add(1, Ordering::Relaxed);
                            if i >= job.configs.len() {
                                break;
                            }
                            let cost = ctx.eval(&job.configs[i]);
                            let _ = job.results[i].set(cost);
                        }
                        drop(job);
                        if done_tx.send(()).is_err() {
                            break; // coordinator went away
                        }
                    }
                }));
            }
        }
        EvalPool {
            ctx,
            cache,
            workers,
            senders,
            done_rx,
            handles,
            evaluated: 0,
            pruned: 0,
            wall_clock: Duration::ZERO,
        }
    }

    /// Worker threads this pool evaluates with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this pool evaluates through the split-phase template fast
    /// path (`true`, the default) or re-lowers every candidate
    /// ([`EvalPool::new_reference`]).
    pub fn uses_template(&self) -> bool {
        self.ctx.use_template
    }

    /// Whether the static analyzer gate is enabled
    /// ([`EvalPool::new_gated`]).
    pub fn analyzer_gate(&self) -> bool {
        self.ctx.analyzer_gate
    }

    /// The memo cache in front of the evaluator.
    pub fn cache(&self) -> &Arc<MemoCache> {
        &self.cache
    }

    /// Evaluates a batch of candidate points, memoized and in parallel.
    ///
    /// The returned vector is index-aligned with `configs` — the
    /// reduction order is the candidate order, independent of the worker
    /// count and of thread scheduling.
    pub fn evaluate_batch(&mut self, configs: &[NodeConfig]) -> Vec<EvalOutcome> {
        let t0 = Instant::now();
        let n = configs.len();
        let mut keys: Vec<Vec<i64>> = configs.iter().map(NodeConfig::encode).collect();
        let mut out: Vec<Option<EvalOutcome>> = vec![None; n];

        // Resolve cache hits and in-batch duplicates on the coordinator.
        let mut first_of_key: HashMap<&[i64], usize> = HashMap::new();
        let mut work: Vec<usize> = Vec::new();
        let mut hits = 0usize;
        for i in 0..n {
            if let Some(cost) = self.cache.peek(&keys[i]) {
                out[i] = Some(EvalOutcome {
                    cost,
                    fresh: false,
                    pruned: false,
                });
                hits += 1;
            } else if !first_of_key.contains_key(keys[i].as_slice()) {
                first_of_key.insert(&keys[i], i);
                work.push(i);
            }
            // else: duplicate of an earlier candidate; resolved below.
        }

        // Evaluate the misses — inline when serial or trivially small,
        // fanned out over the persistent workers otherwise.
        let fresh: Vec<(Option<Cost>, bool)> = if self.senders.is_empty() || work.len() <= 1 {
            work.iter().map(|&i| self.ctx.eval(&configs[i])).collect()
        } else {
            let job = Arc::new(BatchJob {
                configs: work.iter().map(|&i| configs[i].clone()).collect(),
                next: AtomicUsize::new(0),
                results: (0..work.len()).map(|_| OnceLock::new()).collect(),
            });
            for tx in &self.senders {
                tx.send(Arc::clone(&job)).expect("evaluation worker died");
            }
            let done = self.done_rx.as_ref().expect("pool has workers");
            for _ in 0..self.senders.len() {
                done.recv().expect("evaluation worker died");
            }
            job.results
                .iter()
                .map(|slot| *slot.get().expect("every claimed slot is filled"))
                .collect()
        };

        // Reduce in candidate order: publish fresh results, then resolve
        // duplicates as hits.
        for (&(cost, pruned), &i) in fresh.iter().zip(&work) {
            out[i] = Some(EvalOutcome {
                cost,
                fresh: true,
                pruned,
            });
        }
        for i in 0..n {
            if out[i].is_none() {
                let j = first_of_key[keys[i].as_slice()];
                let cost = out[j].expect("first occurrence resolved").cost;
                out[i] = Some(EvalOutcome {
                    cost,
                    fresh: false,
                    pruned: false,
                });
                hits += 1;
            }
        }
        // All cache writes happen here, on the coordinator, in candidate
        // order, so cache content is deterministic. Keys move into the
        // cache (no clone per fresh evaluation). Gate rejections memoize
        // as `None` — sound, since they would have evaluated to `None`.
        drop(first_of_key);
        for (&(cost, _), &i) in fresh.iter().zip(&work) {
            self.cache.insert(std::mem::take(&mut keys[i]), cost);
        }
        self.cache.count_hits(hits);
        self.cache.count_misses(work.len());
        self.evaluated += work.len();
        self.pruned += fresh.iter().filter(|&&(_, pruned)| pruned).count();
        self.wall_clock += t0.elapsed();

        out.into_iter()
            .map(|o| o.expect("all slots resolved"))
            .collect()
    }

    /// Evaluates a single point through the cache.
    pub fn evaluate(&mut self, cfg: &NodeConfig) -> EvalOutcome {
        self.evaluate_batch(std::slice::from_ref(cfg))[0]
    }

    /// A snapshot of this pool's statistics.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            evaluated: self.evaluated,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            pruned: self.pruned,
            workers: self.workers,
            wall_clock_s: self.wall_clock.as_secs_f64(),
        }
    }

    /// Emits the pool's cumulative statistics as a
    /// [`PoolStats`](TraceEvent::PoolStats) telemetry event, tagged with
    /// the trial whose batch just completed. No-op when telemetry is
    /// disabled.
    ///
    /// Call this right after [`EvalPool::evaluate_batch`] (before the
    /// driver reduces the outcomes), so the last emitted record always
    /// equals the pool's final statistics even if the driver stops early
    /// mid-reduction — trace replay relies on that.
    pub fn emit_stats(&self, telemetry: &Telemetry, trial: usize) {
        if !telemetry.is_enabled() {
            return;
        }
        let s = self.stats();
        telemetry.emit(TraceEvent::PoolStats {
            trial,
            evaluated: s.evaluated,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_entries: self.cache.len(),
            workers: s.workers,
            wall_s: s.wall_clock_s,
        });
        // Gate-enabled pools additionally record the pruning tally; traces
        // from ungated runs (including all pre-gate fixtures) are
        // unchanged byte for byte.
        if self.ctx.analyzer_gate {
            telemetry.emit(TraceEvent::AnalyzerStats {
                trial,
                pruned: s.pruned,
            });
        }
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        self.senders.clear(); // workers' recv() now errors and they exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// The pool moves the graph, evaluator, and configs across threads; keep
// that a compile-time guarantee rather than an accident of field types.
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Graph>();
    check::<Evaluator>();
    check::<NodeConfig>();
    check::<Cost>();
    check::<MemoCache>();
    check::<EvalStats>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, Device};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Evaluator) {
        (ops::gemm(64, 64, 64), Evaluator::new(Device::Gpu(v100())))
    }

    #[test]
    fn batch_results_match_direct_evaluation() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(1);
        let cands: Vec<_> = (0..24).map(|_| space.random_point(&mut rng)).collect();
        let mut pool = EvalPool::new(&g, &ev, 4, 1 << 16);
        let outcomes = pool.evaluate_batch(&cands);
        for (cfg, oc) in cands.iter().zip(&outcomes) {
            assert_eq!(oc.cost, ev.evaluate(&g, cfg));
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(2);
        let cands: Vec<_> = (0..40).map(|_| space.random_point(&mut rng)).collect();
        let serial = EvalPool::new(&g, &ev, 1, 1 << 16).evaluate_batch(&cands);
        let parallel = EvalPool::new(&g, &ev, 8, 1 << 16).evaluate_batch(&cands);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn repeats_hit_the_cache() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut pool = EvalPool::new(&g, &ev, 1, 1 << 16);
        let p = space.start_point();
        let first = pool.evaluate(&p);
        assert!(first.fresh);
        let second = pool.evaluate(&p);
        assert!(!second.fresh);
        assert_eq!(first.cost, second.cost);
        let s = pool.stats();
        assert_eq!(s.evaluated, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_batch_duplicates_evaluate_once() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let p = space.start_point();
        let mut pool = EvalPool::new(&g, &ev, 4, 1 << 16);
        let outcomes = pool.evaluate_batch(&[p.clone(), p.clone(), p.clone()]);
        assert!(outcomes[0].fresh);
        assert!(!outcomes[1].fresh && !outcomes[2].fresh);
        assert_eq!(pool.stats().evaluated, 1);
        assert_eq!(pool.stats().cache_hits, 2);
    }

    #[test]
    fn cache_flushes_at_capacity_but_stays_correct() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(3);
        // Tiny capacity: shards hold one entry each and flush constantly.
        let mut pool = EvalPool::new(&g, &ev, 1, CACHE_SHARDS);
        let cands: Vec<_> = (0..50).map(|_| space.random_point(&mut rng)).collect();
        let outcomes = pool.evaluate_batch(&cands);
        for (cfg, oc) in cands.iter().zip(&outcomes) {
            assert_eq!(oc.cost, ev.evaluate(&g, cfg));
        }
        assert!(pool.cache().len() <= CACHE_SHARDS);
    }

    #[test]
    fn reference_pool_matches_template_fast_path() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(4);
        let mut cands: Vec<_> = (0..32).map(|_| space.random_point(&mut rng)).collect();
        cands.push(cands[0].clone()); // in-batch duplicate
        let mut fast = EvalPool::new(&g, &ev, 4, 1 << 16);
        let mut reference = EvalPool::new_reference(&g, &ev, 4, 1 << 16);
        assert!(fast.uses_template());
        assert!(!reference.uses_template());
        assert_eq!(
            fast.evaluate_batch(&cands),
            reference.evaluate_batch(&cands)
        );
        assert_eq!(fast.stats().evaluated, reference.stats().evaluated);
    }

    #[test]
    fn infeasible_points_are_memoized() {
        let (g, ev) = setup();
        let mut bad = NodeConfig::naive(g.root_op());
        bad.spatial_splits[0] = vec![3, 1, 1, 1]; // product mismatch
        let mut pool = EvalPool::new(&g, &ev, 1, 1 << 16);
        assert_eq!(
            pool.evaluate(&bad),
            EvalOutcome {
                cost: None,
                fresh: true,
                pruned: false
            }
        );
        assert_eq!(
            pool.evaluate(&bad),
            EvalOutcome {
                cost: None,
                fresh: false,
                pruned: false
            }
        );
        assert_eq!(pool.stats().evaluated, 1);
    }

    #[test]
    fn gated_pool_prunes_infeasible_and_matches_costs() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(5);
        let mut cands: Vec<_> = (0..40).map(|_| space.random_point(&mut rng)).collect();
        // An invalid config prunes at the config level.
        let mut bad = NodeConfig::naive(g.root_op());
        bad.spatial_splits[0] = vec![3, 1, 1, 1];
        cands.push(bad);
        let plain = EvalPool::new(&g, &ev, 1, 1 << 16).evaluate_batch(&cands);
        for workers in [1, 4] {
            let mut pool = EvalPool::new_gated(&g, &ev, workers, 1 << 16);
            assert!(pool.analyzer_gate());
            let gated = pool.evaluate_batch(&cands);
            for (p, q) in plain.iter().zip(&gated) {
                assert_eq!(p.cost, q.cost);
                assert!(!q.pruned || q.cost.is_none());
            }
            let s = pool.stats();
            assert!(s.pruned >= 1, "invalid config must be pruned");
            assert_eq!(s.pruned, gated.iter().filter(|o| o.pruned).count());
        }
        assert_eq!(
            EvalPool::new(&g, &ev, 1, 1 << 16).stats().pruned,
            0,
            "ungated pools never prune"
        );
    }
}
