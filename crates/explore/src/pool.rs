//! Parallel, memoized candidate evaluation (§5.2's parallel back-end).
//!
//! The real FlexTensor amortizes its ≤ 1 s compile+measure overhead by
//! evaluating a trial's candidate points concurrently. This module is the
//! reproduction's equivalent for the analytical evaluator:
//!
//! * [`MemoCache`] — a concurrent (sharded, `Send + Sync`) memo table
//!   keyed on the canonical [`NodeConfig::encode`] form, with hit/miss
//!   counters, so repeat visits cost zero modeled and zero real time;
//! * [`EvalPool`] — a persistent worker pool that fans a batch of
//!   candidate points out over `eval_workers` threads and reduces the
//!   results in the **fixed candidate order**, so every search driver
//!   built on it is bit-for-bit deterministic in the worker count.
//!
//! Workers evaluate through a shared split-phase
//! [`LoweredTemplate`]: the config-independent half of
//! lowering is computed once when the pool is built, and each candidate
//! only pays the cheap config-apply step (identical results to a full
//! re-lowering — see `docs/PERFORMANCE.md`). The re-lowering path is kept
//! behind [`EvalPool::new_reference`] for differential tests and the
//! `probe_perf` baseline. Cost-model scoring is *batched*: candidates'
//! features are gathered into a structure-of-arrays
//! [`FeatureBatch`] and scored through one
//! [`Evaluator::time_features_batch`] call per coordinator batch (or per
//! claimed worker chunk), bit-identical to scalar scoring by that API's
//! determinism contract. Memo keys are hashed once per candidate, and
//! neighbor batches derive each candidate's key from its base's key by
//! patching only the changed words ([`NodeConfig::encode_delta_into`]).
//!
//! Determinism argument: the evaluator is a pure function of
//! `(graph, config)`, candidate batches are constructed before any
//! evaluation starts, per-candidate results land in pre-assigned slots,
//! and all cache bookkeeping happens on the coordinating thread in batch
//! order. Thread scheduling can therefore change *wall-clock time only*,
//! never a result or a counter.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flextensor_ir::graph::Graph;
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::delta::{delta_features_with, DeltaScratch};
use flextensor_schedule::features::KernelFeatures;
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::batch::FeatureBatch;
use flextensor_sim::model::{Cost, Evaluator};
use flextensor_telemetry::{Telemetry, TraceEvent};

/// Number of independent shards in a [`MemoCache`]; bounds coordinator /
/// worker contention when the cache is shared across threads.
const CACHE_SHARDS: usize = 16;

/// Template-path batches at or below this many fresh evaluations run on
/// the coordinator instead of fanning out. Through the split-phase
/// template a fresh evaluation costs ~0.3 µs, while waking the worker
/// threads, cloning the work subset into the job, and collecting results
/// costs tens of µs per batch — measured on the probe hardware, fan-out
/// only breaks even around a thousand fresh template-path candidates.
/// Reference pools re-lower every candidate (~2 orders of magnitude more
/// work per point), so they fan out for any non-trivial batch. The
/// outcome of a batch is identical either way; only wall-clock changes.
const INLINE_BATCH: usize = 1024;

/// Fan-out work-claim granularity: a worker claims this many candidates
/// per `fetch_add` and scores them through one batched cost-model call
/// ([`Evaluator::time_features_batch`]). Result slots are pre-assigned per
/// candidate, so the chunk size only changes load balancing and the
/// batching of the scoring loop — never a result or a counter.
const WORKER_CHUNK: usize = 32;

/// FNV-1a for the pool's integer-keyed maps. The standard library's
/// default hasher (SipHash) is keyed for DoS resistance, which the pool
/// does not need: keys are canonical config encodings produced by the
/// search itself, never external input — with short `i64`-word keys,
/// FNV's one xor-multiply per word is several times cheaper.
/// Deterministic across runs and platforms.
#[derive(Debug, Clone, Copy)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325) // FNV-1a 64-bit offset basis
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }

    // Word-at-a-time fast paths: config keys hash as a run of `i64`s plus
    // a `usize` length prefix, so these cover every write the pool does.
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x1000_0000_01b3);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` using [`FnvHasher`].
type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Empty-slot sentinel in a [`Shard`]'s probe table.
const EMPTY: u32 = u32::MAX;

/// One probe-table slot: the key's full 64-bit hash (compared before any
/// key bytes are touched, so probe misses stay in the table's cache
/// lines) and the entry it points at (`EMPTY` = free).
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    idx: u32,
}

/// One live cache entry; its key lives in the shard's arena at
/// `start..start + len`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    start: u32,
    len: u32,
    value: Option<Cost>,
}

/// One [`MemoCache`] shard: an open-addressed (linear-probing) table over
/// entries whose keys are packed back to back in a flat `i64` arena.
///
/// Compared to a `HashMap<Vec<i64>, _>`, an insert costs no allocation
/// (key words append to the arena) and a lookup costs one probe run over
/// 16-byte slots plus — only on a full 64-bit hash match — one key
/// comparison against the arena. That removes the per-candidate malloc
/// and the pointer chase per probe, which dominated the evaluation
/// pipeline (see `docs/PERFORMANCE.md`).
#[derive(Debug, Default)]
struct Shard {
    /// Power-of-two probe table (empty until the first insert).
    slots: Vec<Slot>,
    /// Live entries in insertion order.
    entries: Vec<Entry>,
    /// Key words of every live entry, back to back.
    arena: Vec<i64>,
}

impl Shard {
    /// Finds `key` (`Ok(entry index)`) or the free slot where it would be
    /// inserted (`Err(slot index)`). Requires a non-empty probe table.
    fn find(&self, hash: u64, key: &[i64]) -> Result<usize, usize> {
        let mask = self.slots.len() - 1;
        // Probe from bits disjoint from the shard-selection bits (the low
        // `log2(CACHE_SHARDS)` bits are constant within a shard).
        let mut i = ((hash >> 7) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.idx == EMPTY {
                return Err(i);
            }
            if s.hash == hash {
                let e = self.entries[s.idx as usize];
                if self.arena[e.start as usize..(e.start + e.len) as usize] == *key {
                    return Ok(s.idx as usize);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the probe table, re-seating the existing slots (entry and
    /// arena storage is untouched — only 16-byte slots move).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut slots = vec![
            Slot {
                hash: 0,
                idx: EMPTY
            };
            new_len
        ];
        let mask = new_len - 1;
        for s in &self.slots {
            if s.idx == EMPTY {
                continue;
            }
            let mut i = ((s.hash >> 7) as usize) & mask;
            while slots[i].idx != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = *s;
        }
        self.slots = slots;
    }

    /// Generational flush: drops every entry but keeps the allocations.
    fn clear(&mut self) {
        self.entries.clear();
        self.arena.clear();
        for s in &mut self.slots {
            s.idx = EMPTY;
        }
    }
}

/// A concurrent, bounded memo table for evaluation results.
///
/// Keys are the canonical integer encoding of a schedule point
/// ([`NodeConfig::encode`]); values are the evaluator's verdict, including
/// `None` for infeasible points, so infeasibility is memoized too.
/// Internally each shard is an open-addressed table with keys packed in a
/// flat arena (`Shard`), so a warm insert allocates nothing.
///
/// Bounding: each shard holds at most `capacity / CACHE_SHARDS` entries
/// and is *flushed* (generationally cleared) when an insert would
/// overflow it — simple, allocation-friendly, and deterministic as long
/// as inserts happen in a deterministic order.
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MemoCache {
    /// A cache holding at most (approximately) `capacity` entries.
    pub fn new(capacity: usize) -> MemoCache {
        MemoCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard_capacity: (capacity / CACHE_SHARDS).max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// FNV-1a over the key words; stable across platforms. The low bits
    /// select the shard, bits 7+ seat the key in the shard's probe table.
    /// Public so a caller holding many keys (the evaluation pool) can hash
    /// each one once and reuse it across [`MemoCache::peek_hashed`],
    /// in-batch duplicate detection, and [`MemoCache::insert_hashed`].
    pub fn hash(key: &[i64]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in key {
            h ^= w as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % CACHE_SHARDS as u64) as usize]
    }

    /// Looks a key up **without** touching the hit/miss counters (the
    /// counters record lookups-with-intent, see [`MemoCache::count_hits`]).
    pub fn peek(&self, key: &[i64]) -> Option<Option<Cost>> {
        self.peek_hashed(MemoCache::hash(key), key)
    }

    /// [`MemoCache::peek`] with a precomputed [`MemoCache::hash`] of `key`.
    pub fn peek_hashed(&self, hash: u64, key: &[i64]) -> Option<Option<Cost>> {
        debug_assert_eq!(hash, MemoCache::hash(key));
        let shard = self.shard(hash).lock().expect("cache shard poisoned");
        if shard.slots.is_empty() {
            return None;
        }
        match shard.find(hash, key) {
            Ok(idx) => Some(shard.entries[idx].value),
            Err(_) => None,
        }
    }

    /// Inserts an evaluation result, flushing the target shard first when
    /// it is at capacity. The key is copied into the shard's arena; no
    /// per-entry allocation happens on a warm shard.
    pub fn insert(&self, key: &[i64], value: Option<Cost>) {
        self.insert_hashed(MemoCache::hash(key), key, value)
    }

    /// [`MemoCache::insert`] with a precomputed [`MemoCache::hash`] of
    /// `key`.
    pub fn insert_hashed(&self, hash: u64, key: &[i64], value: Option<Cost>) {
        debug_assert_eq!(hash, MemoCache::hash(key));
        let mut shard = self.shard(hash).lock().expect("cache shard poisoned");
        if shard.slots.is_empty() {
            shard.slots = vec![
                Slot {
                    hash: 0,
                    idx: EMPTY
                };
                64
            ];
        }
        let mut free = match shard.find(hash, key) {
            Ok(idx) => {
                shard.entries[idx].value = value;
                return;
            }
            Err(free) => free,
        };
        if shard.entries.len() >= self.per_shard_capacity
            || shard.arena.len() + key.len() > u32::MAX as usize
        {
            // The insert would overflow the shard: generational flush.
            shard.clear();
            free = ((hash >> 7) as usize) & (shard.slots.len() - 1);
        } else if (shard.entries.len() + 1) * 8 > shard.slots.len() * 7 {
            shard.grow();
            free = shard
                .find(hash, key)
                .expect_err("key cannot appear during growth");
        }
        let start = shard.arena.len() as u32;
        shard.arena.extend_from_slice(key);
        let idx = shard.entries.len() as u32;
        shard.entries.push(Entry {
            start,
            len: key.len() as u32,
            value,
        });
        shard.slots[free] = Slot { hash, idx };
    }

    /// Records `n` lookups answered from the cache.
    pub fn count_hits(&self, n: usize) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` lookups that required a fresh evaluation.
    pub fn count_misses(&self, n: usize) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh evaluation so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Per-search evaluation statistics, surfaced through
/// [`SearchResult`](crate::methods::SearchResult) and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalStats {
    /// Fresh evaluations resolved by this pool (cache misses). Includes
    /// candidates the analyzer gate rejected statically; those are also
    /// counted in `pruned`.
    pub evaluated: usize,
    /// Lookups answered from the memo cache.
    pub cache_hits: usize,
    /// Lookups that required a fresh evaluation.
    pub cache_misses: usize,
    /// Candidates a static gate (the analyzer gate or the region gate)
    /// rejected before the cost model ran (always 0 when both gates are
    /// off).
    pub pruned: usize,
    /// Candidates the region gate rejected because their power-of-two
    /// factor box was certified statically illegal (always 0 when the
    /// region gate is off). A subset of `pruned`.
    pub region_pruned: usize,
    /// Distinct candidate regions the region gate analyzed (always 0 when
    /// the region gate is off).
    pub regions_analyzed: usize,
    /// Worker threads used for evaluation.
    pub workers: usize,
    /// Real time spent inside batched evaluation, seconds.
    pub wall_clock_s: f64,
    /// Fresh evaluations served by the incremental (delta) fast path
    /// (always 0 when the pool was not built with
    /// [`EvalPool::new_delta`]). For delta pools,
    /// `delta_hits + delta_full == evaluated`.
    pub delta_hits: usize,
    /// Fresh evaluations in a delta pool that needed the full feature
    /// recompute (no base available, `inline_data` flips, or plain
    /// batches without neighbor structure). Always 0 when delta
    /// evaluation is off.
    pub delta_full: usize,
}

impl EvalStats {
    /// Total cache lookups.
    ///
    /// ```
    /// use flextensor_explore::pool::EvalStats;
    ///
    /// let stats = EvalStats {
    ///     evaluated: 40,
    ///     cache_hits: 10,
    ///     cache_misses: 40,
    ///     pruned: 0,
    ///     region_pruned: 0,
    ///     regions_analyzed: 0,
    ///     workers: 4,
    ///     wall_clock_s: 0.2,
    ///     delta_hits: 0,
    ///     delta_full: 0,
    /// };
    /// assert_eq!(stats.lookups(), 50);
    /// assert!((stats.hit_rate() - 0.2).abs() < 1e-12);
    /// ```
    pub fn lookups(&self) -> usize {
        self.cache_hits + self.cache_misses
    }

    /// Fraction of lookups answered from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.lookups() as f64
        }
    }
}

/// The outcome of one candidate in a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// The evaluator's verdict (`None` = infeasible).
    pub cost: Option<Cost>,
    /// `true` when this batch ran the evaluator for the point; `false`
    /// when the memo cache (or an earlier duplicate in the same batch)
    /// already knew the answer. Fresh evaluations are the ones that cost
    /// modeled measurement time.
    pub fresh: bool,
    /// `true` when the static analyzer gate rejected the point before the
    /// cost model ran (implies `cost == None`; such candidates cost no
    /// modeled measurement time).
    pub pruned: bool,
}

/// What workers need to evaluate a point; shared immutably.
struct EvalCtx {
    graph: Graph,
    evaluator: Evaluator,
    /// Split-phase lowering template for `graph` on the evaluator's
    /// target: the config-independent half of lowering, built once per
    /// pool and shared by every worker (see `flextensor_schedule::template`).
    template: LoweredTemplate,
    /// `false` only in reference pools ([`EvalPool::new_reference`]),
    /// which re-lower every candidate from scratch for differential
    /// testing and perf-probe baselines.
    use_template: bool,
    /// When `true`, candidates whose features trip an `Error`-level
    /// static-analysis rule are rejected before the cost model runs.
    /// Sound by `flextensor_analyze::gate_rejects`'s contract: a rejected
    /// candidate would have evaluated to `None` anyway, so gating never
    /// changes a cost — only whether modeled measurement time is spent.
    analyzer_gate: bool,
    /// When `true` ([`EvalPool::new_delta`]), batches that carry neighbor
    /// structure ([`EvalPool::evaluate_batch_delta`]) evaluate candidates
    /// incrementally from their base's features. Bit-identical to the
    /// plain path (`flextensor_schedule::delta` invariants); only the
    /// work per candidate changes.
    delta_eval: bool,
    /// Batches with at most this many fresh evaluations run on the
    /// coordinator instead of fanning out ([`INLINE_BATCH`] for
    /// template-path pools, 1 for reference pools; tests force 0 to
    /// exercise the fan-out path on small batches).
    inline_batch: usize,
    /// Live interval region gate ([`EvalPool::new_region_gated`]): when
    /// present, each fresh candidate is bucketed into its power-of-two
    /// factor box and skipped when `flextensor_analyze::analyze_region`
    /// certifies the whole box statically illegal. Sound by
    /// [`RegionVerdict::Illegal`]'s contract — every member of an illegal
    /// region (the candidate included) evaluates to `None` — so gating
    /// never changes a cost, only whether modeled measurement time is
    /// spent.
    region_gate: Option<RegionGateState>,
}

/// Shared state of the live region gate: a verdict memo keyed by the
/// region's bucket signature, plus the prune tally. Verdicts are a pure
/// function of the bucket key, so concurrent workers computing the same
/// bucket insert the same value — counters derived from the memo are
/// deterministic in the worker count.
struct RegionGateState {
    /// Bucket signature → "the whole region is statically illegal".
    memo: Mutex<FnvMap<Vec<i64>, bool>>,
    /// Fresh candidates skipped because their region proved illegal.
    pruned: AtomicUsize,
}

/// The inclusive power-of-two bucket `[2^b, 2^(b+1) - 1]` a split factor
/// falls in. Every factor of the same bucket shares the same region, so
/// one interval analysis covers all of them.
fn pow2_bucket(f: i64) -> (i64, i64) {
    let b = 63 - (f.max(1) as u64).leading_zeros();
    (1i64 << b, (1i64 << (b + 1)) - 1)
}

/// The canonical signature of `cfg`'s bucket region: flags, discrete
/// coordinates, and the per-(axis, level) bucket exponents. Two configs
/// share a signature iff [`region_bucket`] builds the same region.
fn region_bucket_key(cfg: &NodeConfig) -> Vec<i64> {
    let n: usize = cfg.spatial_splits.iter().map(Vec::len).sum::<usize>()
        + cfg.reduce_splits.iter().map(Vec::len).sum::<usize>()
        + cfg.reorder.len()
        + 4;
    let mut key = Vec::with_capacity(n);
    key.push(
        (cfg.unroll as i64)
            | ((cfg.vectorize as i64) << 1)
            | ((cfg.cache_shared as i64) << 2)
            | ((cfg.inline_data as i64) << 3),
    );
    key.push(cfg.fuse_outer as i64);
    key.push(cfg.fpga_partition);
    key.push(cfg.fpga_pipeline);
    key.extend(cfg.reorder.iter().map(|&r| r as i64));
    for row in cfg.spatial_splits.iter().chain(&cfg.reduce_splits) {
        key.extend(row.iter().map(|&f| pow2_bucket(f).0));
    }
    key
}

/// The power-of-two factor box around `cfg`: each split factor widens to
/// its [`pow2_bucket`]; flags and discrete coordinates stay fixed. `cfg`
/// is a member of the result by construction, so an
/// [`RegionVerdict::Illegal`](flextensor_analyze::RegionVerdict) verdict
/// for the box proves the evaluator scores `cfg` itself `None`.
fn region_bucket(cfg: &NodeConfig) -> Option<flextensor_analyze::Region> {
    let ranges = |rows: &[Vec<i64>]| -> Vec<Vec<(i64, i64)>> {
        rows.iter()
            .map(|row| row.iter().map(|&f| pow2_bucket(f)).collect())
            .collect()
    };
    flextensor_analyze::Region::from_ranges(
        cfg.clone(),
        ranges(&cfg.spatial_splits),
        ranges(&cfg.reduce_splits),
        flextensor_analyze::FlagChoice::Fixed(cfg.unroll),
        flextensor_analyze::FlagChoice::Fixed(cfg.vectorize),
        flextensor_analyze::FlagChoice::Fixed(cfg.cache_shared),
        flextensor_analyze::FlagChoice::Fixed(cfg.inline_data),
    )
    .ok()
}

/// What one candidate contributed to a feature batch, before scoring.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// A feature row was pushed; the verdict comes from the batched
    /// scoring pass. When `false` the verdict is already `None`
    /// (config-invalid or gate-rejected).
    valid: bool,
    /// The analyzer gate (or a config-level legality error on a gated
    /// pool) rejected the point before the cost model.
    pruned: bool,
    /// The incremental (delta) feature path served the point.
    took_delta: bool,
}

impl EvalCtx {
    /// Derives the features for one point — incrementally from `base` when
    /// delta evaluation is on and a base is available — and appends them to
    /// `batch` as one row when the point is scoreable. Scoring happens
    /// separately, over the whole batch, through
    /// [`Evaluator::time_features_batch`] (bit-identical to scoring rows
    /// one at a time; see `flextensor_sim::batch`).
    ///
    /// The delta/full decision is a pure function of `(base, cfg)` — it
    /// never depends on which worker runs the item or in what order — so
    /// results *and counters* are deterministic across worker counts.
    fn features_into(
        &self,
        cfg: &NodeConfig,
        base: Option<&(NodeConfig, KernelFeatures)>,
        scratch: &mut DeltaScratch,
        batch: &mut FeatureBatch,
    ) -> RowMeta {
        if self.region_rejects(cfg) {
            return RowMeta {
                valid: false,
                pruned: true,
                took_delta: false,
            };
        }
        if let (true, Some((base_cfg, base_features))) = (self.delta_eval, base) {
            return match delta_features_with(&self.template, base_cfg, base_features, cfg, scratch)
            {
                Ok((features, took_delta)) => {
                    if self.analyzer_gate
                        && flextensor_analyze::gate_rejects(self.evaluator.device(), &features)
                            .is_some()
                    {
                        RowMeta {
                            valid: false,
                            pruned: true,
                            took_delta,
                        }
                    } else {
                        batch.push(&features);
                        RowMeta {
                            valid: true,
                            pruned: false,
                            took_delta,
                        }
                    }
                }
                // Invalid for the graph: same verdict (and same pruned
                // semantics) as the full path below.
                Err(_) => RowMeta {
                    valid: false,
                    pruned: self.analyzer_gate,
                    took_delta: false,
                },
            };
        }
        let features = if self.use_template {
            self.template.features(cfg).ok()
        } else {
            let target = self.evaluator.target();
            flextensor_schedule::lower::lower(&self.graph, cfg, target)
                .ok()
                .map(|k| k.features)
        };
        let Some(features) = features else {
            // Invalid for the graph (a config-level legality error); gated
            // pools report it as pruned, plain pools as a bare `None`.
            return RowMeta {
                valid: false,
                pruned: self.analyzer_gate,
                took_delta: false,
            };
        };
        if self.analyzer_gate
            && flextensor_analyze::gate_rejects(self.evaluator.device(), &features).is_some()
        {
            return RowMeta {
                valid: false,
                pruned: true,
                took_delta: false,
            };
        }
        batch.push(&features);
        RowMeta {
            valid: true,
            pruned: false,
            took_delta: false,
        }
    }

    /// The live region gate: buckets `cfg` into the power-of-two factor
    /// box around it (flags and discrete coordinates fixed to `cfg`'s)
    /// and rejects it when the whole box is certified statically illegal.
    /// Verdicts are memoized per bucket, so the cost amortizes to one
    /// interval analysis per visited region. The verdict — and therefore
    /// the candidate's outcome and every counter — is a pure function of
    /// `cfg`, independent of worker count and scheduling.
    fn region_rejects(&self, cfg: &NodeConfig) -> bool {
        let Some(gate) = &self.region_gate else {
            return false;
        };
        let key = region_bucket_key(cfg);
        let cached = gate
            .memo
            .lock()
            .expect("region memo poisoned")
            .get(&key)
            .copied();
        let illegal = match cached {
            Some(v) => v,
            None => {
                let v = match region_bucket(cfg) {
                    Some(region) => matches!(
                        flextensor_analyze::analyze_region(
                            &self.template,
                            &region,
                            &self.evaluator
                        ),
                        flextensor_analyze::RegionVerdict::Illegal(_)
                    ),
                    // A config the box constructor rejects (malformed split
                    // shape) never prunes; the evaluator will verdict it.
                    None => false,
                };
                gate.memo
                    .lock()
                    .expect("region memo poisoned")
                    .insert(key, v);
                v
            }
        };
        if illegal {
            gate.pruned.fetch_add(1, Ordering::Relaxed);
        }
        illegal
    }

    /// Workload FLOPs, read from the active evaluation path (template
    /// pools report the template's, reference pools the graph's — equal by
    /// construction).
    fn flops(&self) -> u64 {
        if self.use_template {
            self.template.graph_flops()
        } else {
            self.graph.flops()
        }
    }

    /// Scores the gathered feature rows and zips the verdicts back onto
    /// the per-candidate metadata, producing the `(cost, pruned,
    /// took_delta)` triples the reduction step consumes. `scores` is the
    /// caller's reusable output buffer for the batched scoring call.
    fn score_batch(
        &self,
        batch: &FeatureBatch,
        metas: &[RowMeta],
        scores: &mut Vec<Option<f64>>,
        out: &mut dyn FnMut(usize, (Option<Cost>, bool, bool)),
    ) {
        self.evaluator.time_features_batch(batch, scores);
        let flops = self.flops();
        let mut row = 0usize;
        for (k, m) in metas.iter().enumerate() {
            let cost = if m.valid {
                let s = scores[row];
                row += 1;
                s.map(|seconds| Cost { seconds, flops })
            } else {
                None
            };
            out(k, (cost, m.pruned, m.took_delta));
        }
    }
}

/// One dispatched batch: workers claim indices from `next` and write into
/// their pre-assigned `results` slot, keeping the reduction order fixed.
struct BatchJob {
    configs: Vec<NodeConfig>,
    /// Base candidates (config + features) for delta evaluation, compacted
    /// to the bases that resolved; empty for plain batches.
    bases: Vec<(NodeConfig, KernelFeatures)>,
    /// Per config: index into `bases` (`None` = evaluate fully). Aligned
    /// with `configs`.
    base_idx: Vec<Option<usize>>,
    next: AtomicUsize,
    results: Vec<OnceLock<(Option<Cost>, bool, bool)>>,
}

/// A persistent pool of evaluation workers with a memo cache in front.
///
/// Created once per search; workers live until the pool is dropped, so
/// per-batch dispatch costs one channel send per worker rather than a
/// thread spawn per candidate.
pub struct EvalPool {
    ctx: Arc<EvalCtx>,
    cache: Arc<MemoCache>,
    workers: usize,
    senders: Vec<Sender<Arc<BatchJob>>>,
    done_rx: Option<Receiver<()>>,
    handles: Vec<JoinHandle<()>>,
    evaluated: usize,
    pruned: usize,
    delta_hits: usize,
    delta_full: usize,
    wall_clock: Duration,
    /// Batch scratch, reused so a steady-state batch allocates only its
    /// result vector: the flat key buffer (all candidate encodings back to
    /// back), the end offset of each key in it, the per-key hash (computed
    /// once, reused by peek / duplicate check / insert), the flat buffer
    /// of base keys for delta batches, and the serial-path feature, batch,
    /// and score scratch.
    key_buf: Vec<i64>,
    key_ends: Vec<usize>,
    key_hashes: Vec<u64>,
    base_key_buf: Vec<i64>,
    inline_scratch: DeltaScratch,
    feature_batch: FeatureBatch,
    score_buf: Vec<Option<f64>>,
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("workers", &self.workers)
            .field("evaluated", &self.evaluated)
            .finish_non_exhaustive()
    }
}

/// Resolves an `eval_workers` option: 0 means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

impl EvalPool {
    /// A pool of `workers` threads (0 = all cores; 1 = evaluate on the
    /// calling thread, no threads spawned) with a fresh memo cache of
    /// `cache_capacity` entries.
    pub fn new(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
    ) -> EvalPool {
        EvalPool::with_cache(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
        )
    }

    /// A pool like [`EvalPool::new`] with the static analyzer gate
    /// enabled: candidates whose lowered features trip an `Error`-level
    /// `flextensor-analyze` legality rule are rejected *before* the cost
    /// model runs ([`EvalOutcome::pruned`], [`EvalStats::pruned`]).
    /// Because the gate only rejects candidates the evaluator would have
    /// scored `None`, every returned cost is bit-identical to an ungated
    /// pool's.
    pub fn new_gated(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
    ) -> EvalPool {
        EvalPool::build(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
            true,
            true,
            false,
            false,
        )
    }

    /// A pool with the live interval **region gate** enabled: each fresh
    /// candidate is bucketed into the power-of-two factor box around it,
    /// the box is analyzed once through
    /// [`flextensor_analyze::analyze_region`], and candidates whose whole
    /// box is certified statically illegal are rejected *before* feature
    /// lowering ([`EvalOutcome::pruned`], [`EvalStats::region_pruned`]).
    /// Because an illegal region only contains candidates the evaluator
    /// would have scored `None`, every returned cost is bit-identical to
    /// an ungated pool's. `analyzer_gate` and `delta_eval` compose exactly
    /// as in [`EvalPool::new_gated`] / [`EvalPool::new_delta`].
    pub fn new_region_gated(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
        analyzer_gate: bool,
        delta_eval: bool,
    ) -> EvalPool {
        EvalPool::build(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
            true,
            analyzer_gate,
            delta_eval,
            true,
        )
    }

    /// A pool with incremental (delta) candidate evaluation enabled:
    /// batches submitted through [`EvalPool::evaluate_batch_delta`]
    /// recompute only the features a candidate's diff against its base
    /// can affect, instead of the full feature set. Results are
    /// bit-identical to a plain pool's (see `flextensor_schedule::delta`);
    /// [`EvalStats::delta_hits`] / [`EvalStats::delta_full`] count how
    /// often the fast path applied. `analyzer_gate` composes the static
    /// pruning gate exactly as in [`EvalPool::new_gated`].
    pub fn new_delta(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
        analyzer_gate: bool,
    ) -> EvalPool {
        EvalPool::build(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
            true,
            analyzer_gate,
            true,
            false,
        )
    }

    /// A reference pool that re-lowers every candidate from scratch
    /// instead of applying the cached [`LoweredTemplate`]. Results are
    /// bit-identical to [`EvalPool::new`] (both paths share one feature
    /// computation); this exists so differential tests and the
    /// `probe_perf` baseline can measure the fast path against it. Not
    /// for production searches.
    pub fn new_reference(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache_capacity: usize,
    ) -> EvalPool {
        EvalPool::build(
            graph,
            evaluator,
            workers,
            Arc::new(MemoCache::new(cache_capacity)),
            false,
            false,
            false,
            false,
        )
    }

    /// A pool sharing an existing memo cache (e.g. across searches over
    /// the same graph and device).
    pub fn with_cache(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache: Arc<MemoCache>,
    ) -> EvalPool {
        EvalPool::build(graph, evaluator, workers, cache, true, false, false, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache: Arc<MemoCache>,
        use_template: bool,
        analyzer_gate: bool,
        delta_eval: bool,
        region_gate: bool,
    ) -> EvalPool {
        let inline_batch = if use_template { INLINE_BATCH } else { 1 };
        EvalPool::build_with_inline(
            graph,
            evaluator,
            workers,
            cache,
            use_template,
            analyzer_gate,
            delta_eval,
            region_gate,
            inline_batch,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build_with_inline(
        graph: &Graph,
        evaluator: &Evaluator,
        workers: usize,
        cache: Arc<MemoCache>,
        use_template: bool,
        analyzer_gate: bool,
        delta_eval: bool,
        region_gate: bool,
        inline_batch: usize,
    ) -> EvalPool {
        let workers = resolve_workers(workers);
        let ctx = Arc::new(EvalCtx {
            graph: graph.clone(),
            evaluator: evaluator.clone(),
            template: LoweredTemplate::new(graph, evaluator.target()),
            use_template,
            analyzer_gate,
            delta_eval,
            inline_batch,
            region_gate: region_gate.then(|| RegionGateState {
                memo: Mutex::new(FnvMap::default()),
                pruned: AtomicUsize::new(0),
            }),
        });
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        let mut done_rx = None;
        if workers > 1 {
            let (done_tx, rx) = channel::<()>();
            done_rx = Some(rx);
            for _ in 0..workers {
                let (tx, job_rx) = channel::<Arc<BatchJob>>();
                senders.push(tx);
                let ctx = Arc::clone(&ctx);
                let done_tx = done_tx.clone();
                handles.push(std::thread::spawn(move || {
                    // Per-worker scratch, reused across batches: the delta
                    // arena, the feature-batch columns, and the score
                    // buffer.
                    let mut scratch = DeltaScratch::new();
                    let mut batch = FeatureBatch::new();
                    let mut scores: Vec<Option<f64>> = Vec::new();
                    let mut metas: Vec<RowMeta> = Vec::new();
                    while let Ok(job) = job_rx.recv() {
                        loop {
                            // Claim a chunk: derive features for every
                            // candidate in it, then score them through one
                            // batched cost-model call. Slots are
                            // pre-assigned, so chunking only changes load
                            // balancing, never a result.
                            let start = job.next.fetch_add(WORKER_CHUNK, Ordering::Relaxed);
                            if start >= job.configs.len() {
                                break;
                            }
                            let end = (start + WORKER_CHUNK).min(job.configs.len());
                            batch.clear();
                            metas.clear();
                            for i in start..end {
                                let base = job.base_idx[i].map(|b| &job.bases[b]);
                                metas.push(ctx.features_into(
                                    &job.configs[i],
                                    base,
                                    &mut scratch,
                                    &mut batch,
                                ));
                            }
                            ctx.score_batch(&batch, &metas, &mut scores, &mut |k, triple| {
                                let _ = job.results[start + k].set(triple);
                            });
                        }
                        drop(job);
                        if done_tx.send(()).is_err() {
                            break; // coordinator went away
                        }
                    }
                }));
            }
        }
        EvalPool {
            ctx,
            cache,
            workers,
            senders,
            done_rx,
            handles,
            evaluated: 0,
            pruned: 0,
            delta_hits: 0,
            delta_full: 0,
            wall_clock: Duration::ZERO,
            key_buf: Vec::new(),
            key_ends: Vec::new(),
            key_hashes: Vec::new(),
            base_key_buf: Vec::new(),
            inline_scratch: DeltaScratch::new(),
            feature_batch: FeatureBatch::new(),
            score_buf: Vec::new(),
        }
    }

    /// Worker threads this pool evaluates with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this pool evaluates through the split-phase template fast
    /// path (`true`, the default) or re-lowers every candidate
    /// ([`EvalPool::new_reference`]).
    pub fn uses_template(&self) -> bool {
        self.ctx.use_template
    }

    /// Whether the static analyzer gate is enabled
    /// ([`EvalPool::new_gated`]).
    pub fn analyzer_gate(&self) -> bool {
        self.ctx.analyzer_gate
    }

    /// Whether incremental (delta) evaluation is enabled
    /// ([`EvalPool::new_delta`]).
    pub fn delta_eval(&self) -> bool {
        self.ctx.delta_eval
    }

    /// Whether the live interval region gate is enabled
    /// ([`EvalPool::new_region_gated`]).
    pub fn region_gate(&self) -> bool {
        self.ctx.region_gate.is_some()
    }

    /// The memo cache in front of the evaluator.
    pub fn cache(&self) -> &Arc<MemoCache> {
        &self.cache
    }

    /// Evaluates a batch of candidate points, memoized and in parallel.
    ///
    /// The returned vector is index-aligned with `configs` — the
    /// reduction order is the candidate order, independent of the worker
    /// count and of thread scheduling.
    pub fn evaluate_batch(&mut self, configs: &[NodeConfig]) -> Vec<EvalOutcome> {
        self.batch_inner(configs, None)
    }

    /// Evaluates a batch of *neighbor* candidates, each derived from one
    /// of `bases` by a single schedule move: `base_of[i]` names the base
    /// (an index into `bases`) candidate `configs[i]` was derived from.
    ///
    /// On a delta pool ([`EvalPool::new_delta`]) each base's features are
    /// computed once on the coordinator and every fresh candidate is then
    /// evaluated incrementally from its base. On a non-delta pool (or for
    /// a base that does not validate) the batch degrades to the plain
    /// path. Either way the outcomes are bit-identical to
    /// [`EvalPool::evaluate_batch`] on the same configs.
    ///
    /// # Panics
    ///
    /// Panics when `base_of` is not aligned with `configs` or names a base
    /// out of range.
    pub fn evaluate_batch_delta(
        &mut self,
        configs: &[NodeConfig],
        base_of: &[usize],
        bases: &[NodeConfig],
    ) -> Vec<EvalOutcome> {
        assert_eq!(
            base_of.len(),
            configs.len(),
            "base_of must be index-aligned with configs"
        );
        assert!(
            base_of.iter().all(|&b| b < bases.len()),
            "base_of entry out of range"
        );
        self.batch_inner(configs, Some((base_of, bases)))
    }

    fn batch_inner(
        &mut self,
        configs: &[NodeConfig],
        delta: Option<(&[usize], &[NodeConfig])>,
    ) -> Vec<EvalOutcome> {
        let t0 = Instant::now();
        let n = configs.len();
        // Encode every candidate into the pool's flat key buffer; for the
        // rest of the batch a key is a slice of it (no per-key vector).
        // Neighbor batches derive each candidate's key from its base's
        // already-encoded key by patching only the changed words
        // ([`NodeConfig::encode_delta_into`]) instead of re-encoding the
        // full config; the derived words are exactly the full encoding, so
        // cache identity is untouched.
        let mut key_buf = std::mem::take(&mut self.key_buf);
        let mut key_ends = std::mem::take(&mut self.key_ends);
        let mut key_hashes = std::mem::take(&mut self.key_hashes);
        key_buf.clear();
        key_ends.clear();
        key_hashes.clear();
        if let Some((base_of, bases)) = delta {
            let mut base_key_buf = std::mem::take(&mut self.base_key_buf);
            base_key_buf.clear();
            // Span of each base's key in `base_key_buf`, encoded lazily so
            // unused bases cost nothing.
            let mut spans: Vec<Option<(usize, usize)>> = vec![None; bases.len()];
            for (i, c) in configs.iter().enumerate() {
                let bi = base_of[i];
                let (s, e) = *spans[bi].get_or_insert_with(|| {
                    let s = base_key_buf.len();
                    bases[bi].encode_into(&mut base_key_buf);
                    (s, base_key_buf.len())
                });
                if !c.encode_delta_into(&bases[bi], &base_key_buf[s..e], &mut key_buf) {
                    c.encode_into(&mut key_buf);
                }
                key_ends.push(key_buf.len());
            }
            self.base_key_buf = base_key_buf;
        } else {
            for c in configs {
                c.encode_into(&mut key_buf);
                key_ends.push(key_buf.len());
            }
        }
        let key = |i: usize| -> &[i64] {
            let start = if i == 0 { 0 } else { key_ends[i - 1] };
            &key_buf[start..key_ends[i]]
        };
        // Hash each key exactly once; the cache peek, the in-batch
        // duplicate check, and the final insert all reuse it.
        for i in 0..n {
            key_hashes.push(MemoCache::hash(key(i)));
        }
        let mut out: Vec<Option<EvalOutcome>> = vec![None; n];

        // Resolve cache hits and in-batch duplicates on the coordinator.
        // Duplicates are detected by the precomputed 64-bit hash with a
        // key comparison on a match; should two *distinct* keys ever
        // collide, the later one is evaluated fresh rather than mis-shared
        // — deterministic either way.
        let mut first_of_hash: FnvMap<u64, usize> =
            FnvMap::with_capacity_and_hasher(n, Default::default());
        let mut work: Vec<usize> = Vec::new();
        let mut hits = 0usize;
        for (i, slot) in out.iter_mut().enumerate() {
            if let Some(cost) = self.cache.peek_hashed(key_hashes[i], key(i)) {
                *slot = Some(EvalOutcome {
                    cost,
                    fresh: false,
                    pruned: false,
                });
                hits += 1;
            } else {
                match first_of_hash.entry(key_hashes[i]) {
                    MapEntry::Vacant(e) => {
                        e.insert(i);
                        work.push(i);
                    }
                    MapEntry::Occupied(e) if key(*e.get()) != key(i) => work.push(i),
                    // else: duplicate of an earlier candidate; resolved
                    // below.
                    MapEntry::Occupied(_) => {}
                }
            }
        }

        // Resolve delta bases once, on the coordinator: one full feature
        // computation per distinct base, amortized over all its neighbors.
        // Bases that do not validate resolve to `None` and their neighbors
        // fall back to the full path.
        let mut job_bases: Vec<(NodeConfig, KernelFeatures)> = Vec::new();
        let mut base_idx: Vec<Option<usize>> = vec![None; work.len()];
        if let Some((base_of, bases)) = delta {
            if self.ctx.delta_eval {
                // Lazily, so bases whose neighbors were all answered from
                // the cache cost nothing.
                let mut resolved: Vec<Option<Option<usize>>> = vec![None; bases.len()];
                for (slot, &i) in base_idx.iter_mut().zip(&work) {
                    let bi = base_of[i];
                    if resolved[bi].is_none() {
                        resolved[bi] = Some(self.ctx.template.features(&bases[bi]).ok().map(|f| {
                            job_bases.push((bases[bi].clone(), f));
                            job_bases.len() - 1
                        }));
                    }
                    *slot = resolved[bi].expect("just resolved");
                }
            }
        }

        // Evaluate the misses — inline when serial or too small to
        // amortize dispatch (see [`INLINE_BATCH`]), fanned out over the
        // persistent workers otherwise. Either way the evaluation is
        // split-phase: features first (delta-aware), then one batched
        // cost-model scoring call per chunk.
        let fresh: Vec<(Option<Cost>, bool, bool)> =
            if self.senders.is_empty() || work.len() <= self.ctx.inline_batch.max(1) {
                let ctx = &self.ctx;
                let scratch = &mut self.inline_scratch;
                let batch = &mut self.feature_batch;
                batch.clear();
                let metas: Vec<RowMeta> = work
                    .iter()
                    .zip(&base_idx)
                    .map(|(&i, &b)| {
                        ctx.features_into(&configs[i], b.map(|bi| &job_bases[bi]), scratch, batch)
                    })
                    .collect();
                let mut fresh: Vec<(Option<Cost>, bool, bool)> =
                    vec![(None, false, false); metas.len()];
                ctx.score_batch(batch, &metas, &mut self.score_buf, &mut |k, triple| {
                    fresh[k] = triple;
                });
                fresh
            } else {
                let job = Arc::new(BatchJob {
                    configs: work.iter().map(|&i| configs[i].clone()).collect(),
                    bases: job_bases,
                    base_idx,
                    next: AtomicUsize::new(0),
                    results: (0..work.len()).map(|_| OnceLock::new()).collect(),
                });
                for tx in &self.senders {
                    tx.send(Arc::clone(&job)).expect("evaluation worker died");
                }
                let done = self.done_rx.as_ref().expect("pool has workers");
                for _ in 0..self.senders.len() {
                    done.recv().expect("evaluation worker died");
                }
                job.results
                    .iter()
                    .map(|slot| *slot.get().expect("every claimed slot is filled"))
                    .collect()
            };

        // Reduce in candidate order: publish fresh results, then resolve
        // duplicates as hits.
        for (&(cost, pruned, _), &i) in fresh.iter().zip(&work) {
            out[i] = Some(EvalOutcome {
                cost,
                fresh: true,
                pruned,
            });
        }
        for i in 0..n {
            if out[i].is_none() {
                // Unresolved ⇒ its key matched an earlier candidate's (the
                // hash entry's key was compared at detection time).
                let j = first_of_hash[&key_hashes[i]];
                let cost = out[j].expect("first occurrence resolved").cost;
                out[i] = Some(EvalOutcome {
                    cost,
                    fresh: false,
                    pruned: false,
                });
                hits += 1;
            }
        }
        // All cache writes happen here, on the coordinator, in candidate
        // order, so cache content is deterministic. Keys are copied from
        // the flat buffer into the cache's arena (no allocation on a warm
        // shard). Gate rejections memoize as `None` — sound, since they
        // would have evaluated to `None`.
        for (&(cost, _, _), &i) in fresh.iter().zip(&work) {
            self.cache.insert_hashed(key_hashes[i], key(i), cost);
        }
        self.key_buf = key_buf;
        self.key_ends = key_ends;
        self.key_hashes = key_hashes;
        self.cache.count_hits(hits);
        self.cache.count_misses(work.len());
        self.evaluated += work.len();
        self.pruned += fresh.iter().filter(|&&(_, pruned, _)| pruned).count();
        if self.ctx.delta_eval {
            // Every fresh evaluation in a delta pool is either a delta hit
            // or a full recompute: delta_hits + delta_full == evaluated.
            let taken = fresh.iter().filter(|&&(_, _, d)| d).count();
            self.delta_hits += taken;
            self.delta_full += fresh.len() - taken;
        }
        self.wall_clock += t0.elapsed();

        out.into_iter()
            .map(|o| o.expect("all slots resolved"))
            .collect()
    }

    /// Evaluates a single point through the cache.
    pub fn evaluate(&mut self, cfg: &NodeConfig) -> EvalOutcome {
        self.evaluate_batch(std::slice::from_ref(cfg))[0]
    }

    /// A snapshot of this pool's statistics.
    pub fn stats(&self) -> EvalStats {
        let (region_pruned, regions_analyzed) = match &self.ctx.region_gate {
            Some(gate) => (
                gate.pruned.load(Ordering::Relaxed),
                gate.memo.lock().expect("region memo poisoned").len(),
            ),
            None => (0, 0),
        };
        EvalStats {
            evaluated: self.evaluated,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            pruned: self.pruned,
            region_pruned,
            regions_analyzed,
            workers: self.workers,
            wall_clock_s: self.wall_clock.as_secs_f64(),
            delta_hits: self.delta_hits,
            delta_full: self.delta_full,
        }
    }

    /// Emits the pool's cumulative statistics as a
    /// [`PoolStats`](TraceEvent::PoolStats) telemetry event, tagged with
    /// the trial whose batch just completed. No-op when telemetry is
    /// disabled.
    ///
    /// Call this right after [`EvalPool::evaluate_batch`] (before the
    /// driver reduces the outcomes), so the last emitted record always
    /// equals the pool's final statistics even if the driver stops early
    /// mid-reduction — trace replay relies on that.
    pub fn emit_stats(&self, telemetry: &Telemetry, trial: usize) {
        if !telemetry.is_enabled() {
            return;
        }
        let s = self.stats();
        telemetry.emit(TraceEvent::PoolStats {
            trial,
            evaluated: s.evaluated,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_entries: self.cache.len(),
            workers: s.workers,
            wall_s: s.wall_clock_s,
        });
        // Gate-enabled pools additionally record the pruning tally; traces
        // from ungated runs (including all pre-gate fixtures) are
        // unchanged byte for byte.
        if self.ctx.analyzer_gate {
            telemetry.emit(TraceEvent::AnalyzerStats {
                trial,
                pruned: s.pruned,
            });
        }
        // Delta pools additionally record the incremental-evaluation
        // tally, mirroring the analyzer-stats opt-in: traces from
        // non-delta runs (including every committed fixture) are unchanged
        // byte for byte.
        if self.ctx.delta_eval {
            telemetry.emit(TraceEvent::DeltaStats {
                trial,
                delta_hits: s.delta_hits,
                delta_full: s.delta_full,
            });
        }
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        self.senders.clear(); // workers' recv() now errors and they exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// The pool moves the graph, evaluator, and configs across threads; keep
// that a compile-time guarantee rather than an accident of field types.
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Graph>();
    check::<Evaluator>();
    check::<NodeConfig>();
    check::<Cost>();
    check::<MemoCache>();
    check::<EvalStats>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, Device};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, Evaluator) {
        (ops::gemm(64, 64, 64), Evaluator::new(Device::Gpu(v100())))
    }

    #[test]
    fn batch_results_match_direct_evaluation() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(1);
        let cands: Vec<_> = (0..24).map(|_| space.random_point(&mut rng)).collect();
        let mut pool = EvalPool::new(&g, &ev, 4, 1 << 16);
        let outcomes = pool.evaluate_batch(&cands);
        for (cfg, oc) in cands.iter().zip(&outcomes) {
            assert_eq!(oc.cost, ev.evaluate(&g, cfg));
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(2);
        let cands: Vec<_> = (0..40).map(|_| space.random_point(&mut rng)).collect();
        let serial = EvalPool::new(&g, &ev, 1, 1 << 16).evaluate_batch(&cands);
        let parallel = EvalPool::new(&g, &ev, 8, 1 << 16).evaluate_batch(&cands);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn repeats_hit_the_cache() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut pool = EvalPool::new(&g, &ev, 1, 1 << 16);
        let p = space.start_point();
        let first = pool.evaluate(&p);
        assert!(first.fresh);
        let second = pool.evaluate(&p);
        assert!(!second.fresh);
        assert_eq!(first.cost, second.cost);
        let s = pool.stats();
        assert_eq!(s.evaluated, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_batch_duplicates_evaluate_once() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let p = space.start_point();
        let mut pool = EvalPool::new(&g, &ev, 4, 1 << 16);
        let outcomes = pool.evaluate_batch(&[p.clone(), p.clone(), p.clone()]);
        assert!(outcomes[0].fresh);
        assert!(!outcomes[1].fresh && !outcomes[2].fresh);
        assert_eq!(pool.stats().evaluated, 1);
        assert_eq!(pool.stats().cache_hits, 2);
    }

    #[test]
    fn cache_flushes_at_capacity_but_stays_correct() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(3);
        // Tiny capacity: shards hold one entry each and flush constantly.
        let mut pool = EvalPool::new(&g, &ev, 1, CACHE_SHARDS);
        let cands: Vec<_> = (0..50).map(|_| space.random_point(&mut rng)).collect();
        let outcomes = pool.evaluate_batch(&cands);
        for (cfg, oc) in cands.iter().zip(&outcomes) {
            assert_eq!(oc.cost, ev.evaluate(&g, cfg));
        }
        assert!(pool.cache().len() <= CACHE_SHARDS);
    }

    #[test]
    fn reference_pool_matches_template_fast_path() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(4);
        let mut cands: Vec<_> = (0..32).map(|_| space.random_point(&mut rng)).collect();
        cands.push(cands[0].clone()); // in-batch duplicate
        let mut fast = EvalPool::new(&g, &ev, 4, 1 << 16);
        let mut reference = EvalPool::new_reference(&g, &ev, 4, 1 << 16);
        assert!(fast.uses_template());
        assert!(!reference.uses_template());
        assert_eq!(
            fast.evaluate_batch(&cands),
            reference.evaluate_batch(&cands)
        );
        assert_eq!(fast.stats().evaluated, reference.stats().evaluated);
    }

    #[test]
    fn infeasible_points_are_memoized() {
        let (g, ev) = setup();
        let mut bad = NodeConfig::naive(g.root_op());
        bad.spatial_splits[0] = vec![3, 1, 1, 1]; // product mismatch
        let mut pool = EvalPool::new(&g, &ev, 1, 1 << 16);
        assert_eq!(
            pool.evaluate(&bad),
            EvalOutcome {
                cost: None,
                fresh: true,
                pruned: false
            }
        );
        assert_eq!(
            pool.evaluate(&bad),
            EvalOutcome {
                cost: None,
                fresh: false,
                pruned: false
            }
        );
        assert_eq!(pool.stats().evaluated, 1);
    }

    #[test]
    fn gated_pool_prunes_infeasible_and_matches_costs() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(5);
        let mut cands: Vec<_> = (0..40).map(|_| space.random_point(&mut rng)).collect();
        // An invalid config prunes at the config level.
        let mut bad = NodeConfig::naive(g.root_op());
        bad.spatial_splits[0] = vec![3, 1, 1, 1];
        cands.push(bad);
        let plain = EvalPool::new(&g, &ev, 1, 1 << 16).evaluate_batch(&cands);
        for workers in [1, 4] {
            let mut pool = EvalPool::new_gated(&g, &ev, workers, 1 << 16);
            assert!(pool.analyzer_gate());
            let gated = pool.evaluate_batch(&cands);
            for (p, q) in plain.iter().zip(&gated) {
                assert_eq!(p.cost, q.cost);
                assert!(!q.pruned || q.cost.is_none());
            }
            let s = pool.stats();
            assert!(s.pruned >= 1, "invalid config must be pruned");
            assert_eq!(s.pruned, gated.iter().filter(|o| o.pruned).count());
        }
        assert_eq!(
            EvalPool::new(&g, &ev, 1, 1 << 16).stats().pruned,
            0,
            "ungated pools never prune"
        );
    }

    /// Builds the neighbor-batch shape the search drivers produce: a few
    /// base points, each expanded along every applicable direction.
    fn neighbor_batch(
        space: &crate::space::Space,
        seed: u64,
        n_bases: usize,
    ) -> (Vec<NodeConfig>, Vec<usize>, Vec<NodeConfig>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bases: Vec<_> = (0..n_bases).map(|_| space.random_point(&mut rng)).collect();
        let mut configs = Vec::new();
        let mut base_of = Vec::new();
        for (bi, base) in bases.iter().enumerate() {
            for dir in space.directions() {
                if let Some(n) = space.apply(base, *dir) {
                    configs.push(n);
                    base_of.push(bi);
                }
            }
        }
        (configs, base_of, bases)
    }

    #[test]
    fn delta_batches_match_plain_batches_across_workers() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let (cands, base_of, bases) = neighbor_batch(&space, 6, 4);
        assert!(cands.len() > 20, "expected a non-trivial neighbor batch");
        let plain = EvalPool::new(&g, &ev, 1, 1 << 16).evaluate_batch(&cands);
        let mut counter_runs = Vec::new();
        for workers in [1, 4] {
            let mut pool = EvalPool::new_delta(&g, &ev, workers, 1 << 16, false);
            assert!(pool.delta_eval());
            let outcomes = pool.evaluate_batch_delta(&cands, &base_of, &bases);
            assert_eq!(outcomes, plain, "delta pool must be bit-identical");
            let s = pool.stats();
            assert_eq!(s.delta_hits + s.delta_full, s.evaluated);
            assert!(s.delta_hits > 0, "neighbor batches must take the fast path");
            counter_runs.push((s.delta_hits, s.delta_full));
        }
        assert_eq!(
            counter_runs[0], counter_runs[1],
            "delta counters must not depend on the worker count"
        );
    }

    /// The inline-vs-fan-out decision is wall-clock-only: forcing tiny
    /// batches through the worker threads (inline threshold 0) must give
    /// the same outcomes and counters as the default inline path, for
    /// plain and delta batches alike.
    #[test]
    fn fanned_out_batches_match_inline_batches() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let (cands, base_of, bases) = neighbor_batch(&space, 9, 4);
        let make = |delta: bool, inline_batch: usize| {
            EvalPool::build_with_inline(
                &g,
                &ev,
                4,
                Arc::new(MemoCache::new(1 << 16)),
                true,
                false,
                delta,
                false,
                inline_batch,
            )
        };
        let inline_plain = make(false, INLINE_BATCH).evaluate_batch(&cands);
        let fanned_plain = make(false, 0).evaluate_batch(&cands);
        assert_eq!(inline_plain, fanned_plain);
        let mut inline_pool = make(true, INLINE_BATCH);
        let mut fanned_pool = make(true, 0);
        assert_eq!(
            inline_pool.evaluate_batch_delta(&cands, &base_of, &bases),
            fanned_pool.evaluate_batch_delta(&cands, &base_of, &bases),
        );
        let (i, f) = (inline_pool.stats(), fanned_pool.stats());
        assert_eq!((i.delta_hits, i.delta_full), (f.delta_hits, f.delta_full));
        assert_eq!(i.evaluated, f.evaluated);
    }

    /// Keys derived from a base key (`encode_delta_into`) must be the
    /// exact canonical encoding: after a delta batch warms the cache, a
    /// *plain* batch over the same configs (keys encoded from scratch)
    /// must be answered entirely from the cache, and vice versa.
    #[test]
    fn delta_derived_keys_share_cache_identity_with_plain_keys() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let (cands, base_of, bases) = neighbor_batch(&space, 10, 4);
        let mut pool = EvalPool::new_delta(&g, &ev, 1, 1 << 16, false);
        let via_delta = pool.evaluate_batch_delta(&cands, &base_of, &bases);
        let evaluated = pool.stats().evaluated;
        let via_plain = pool.evaluate_batch(&cands);
        assert_eq!(
            pool.stats().evaluated,
            evaluated,
            "plain re-encoding must hit every delta-derived cache entry"
        );
        for (d, p) in via_delta.iter().zip(&via_plain) {
            assert_eq!(d.cost, p.cost);
            assert!(!p.fresh);
        }
    }

    #[test]
    fn hashed_cache_entry_points_match_the_plain_ones() {
        let cache = MemoCache::new(1 << 10);
        let key_a = [1i64, 2, 3, 4];
        let key_b = [4i64, 3, 2, 1];
        let cost = Some(Cost {
            seconds: 1.5,
            flops: 10,
        });
        cache.insert_hashed(MemoCache::hash(&key_a), &key_a, cost);
        cache.insert(&key_b, None);
        assert_eq!(cache.peek(&key_a), Some(cost));
        assert_eq!(
            cache.peek_hashed(MemoCache::hash(&key_b), &key_b),
            Some(None)
        );
        assert_eq!(cache.peek_hashed(MemoCache::hash(&[9i64]), &[9i64]), None);
    }

    #[test]
    fn delta_pool_without_bases_behaves_like_a_plain_pool() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let mut rng = StdRng::seed_from_u64(7);
        let cands: Vec<_> = (0..16).map(|_| space.random_point(&mut rng)).collect();
        let plain = EvalPool::new(&g, &ev, 4, 1 << 16).evaluate_batch(&cands);
        let mut pool = EvalPool::new_delta(&g, &ev, 4, 1 << 16, false);
        assert_eq!(pool.evaluate_batch(&cands), plain);
        let s = pool.stats();
        assert_eq!(s.delta_hits, 0);
        assert_eq!(s.delta_full, s.evaluated);
    }

    #[test]
    fn gated_delta_pool_matches_gated_pool() {
        let (g, ev) = setup();
        let space = crate::space::Space::new(&g, ev.target());
        let (cands, base_of, bases) = neighbor_batch(&space, 8, 4);
        let mut gated = EvalPool::new_gated(&g, &ev, 1, 1 << 16);
        let expected = gated.evaluate_batch(&cands);
        for workers in [1, 4] {
            let mut pool = EvalPool::new_delta(&g, &ev, workers, 1 << 16, true);
            assert!(pool.analyzer_gate() && pool.delta_eval());
            let outcomes = pool.evaluate_batch_delta(&cands, &base_of, &bases);
            assert_eq!(outcomes, expected);
            assert_eq!(pool.stats().pruned, gated.stats().pruned);
        }
    }
}
