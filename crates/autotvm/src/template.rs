//! AutoTVM-style schedule templates.
//!
//! AutoTVM requires a hand-written template per operator: a fixed schedule
//! structure with a few tunable knobs (§2.3, §6.5). We implement the
//! standard conv/GEMM-style template: 4-way tiling knobs on the *channel*
//! axis and the *innermost spatial* axis, a 3-way knob on the first reduce
//! axis, and an unroll toggle — everything else (reorder, fusion, caching,
//! other axes) is fixed by the template author. This restriction is what
//! makes the template space orders of magnitude smaller than FlexTensor's
//! (the paper measures 2027× on C2D).

use flextensor_ir::graph::{ComputeOp, Graph};
use flextensor_schedule::config::{NodeConfig, TargetKind, REDUCE_PARTS, SPATIAL_PARTS};
use rand::Rng;

/// Whether `n` is a power of two (including 1).
fn is_pow2(n: i64) -> bool {
    n > 0 && n & (n - 1) == 0
}

/// Enumerates the factorizations a hand-written template would expose:
/// the outermost factor takes the remainder, and every inner factor is a
/// power of two (the standard candidate filter in real AutoTVM conv/GEMM
/// templates — tiles of 2/4/8/16/... only). For power-of-two extents this
/// barely restricts; for extents like 7/14/28/56 it is exactly the
/// shape-inflexibility a template-free space escapes.
pub fn template_factorizations(n: i64, parts: usize) -> Vec<Vec<i64>> {
    enumerate_factorizations(n, parts)
        .into_iter()
        .filter(|f| f.iter().skip(1).all(|&x| is_pow2(x)))
        .collect()
}

/// Enumerates all ordered factorizations of `n` into `parts` factors.
pub fn enumerate_factorizations(n: i64, parts: usize) -> Vec<Vec<i64>> {
    fn rec(n: i64, parts: usize, cur: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
        if parts == 1 {
            let mut v = cur.clone();
            v.push(n);
            out.push(v);
            return;
        }
        let mut d = 1;
        while d <= n {
            if n % d == 0 {
                cur.push(d);
                rec(n / d, parts - 1, cur, out);
                cur.pop();
            }
            d += 1;
        }
    }
    let mut out = Vec::new();
    rec(n, parts, &mut Vec::new(), &mut out);
    out
}

/// One tunable knob: which axis it splits and the candidate factorizations.
#[derive(Debug, Clone)]
struct SplitKnob {
    /// Spatial axis index (`None` = the reduce-axis knob).
    spatial_axis: Option<usize>,
    /// Reduce axis index when `spatial_axis` is `None`.
    reduce_axis: usize,
    candidates: Vec<Vec<i64>>,
}

/// A template: the knob set plus the fixed structure.
#[derive(Debug, Clone)]
pub struct Template {
    op: ComputeOp,
    target: TargetKind,
    knobs: Vec<SplitKnob>,
    /// Knob index vector length = `knobs.len() + 1` (the last entry is the
    /// unroll toggle ∈ {0, 1}).
    num_indices: usize,
}

impl Template {
    /// Builds the generic template for a graph's anchor op.
    pub fn new(graph: &Graph, target: TargetKind) -> Template {
        let op = graph.anchor_op().clone();
        let mut knobs = Vec::new();
        // Like real AutoTVM conv/GEMM templates: a 4-way tiling knob per
        // spatial axis and a 3-way knob on the dominant (first) reduce
        // axis. Everything else — reorder, fusion, caching, inlining,
        // kernel-axis splits, pipeline shape — is fixed by the template
        // author; that restriction is the space-size gap FlexTensor
        // removes.
        for (i, a) in op.spatial.iter().enumerate() {
            if a.extent > 1 {
                knobs.push(SplitKnob {
                    spatial_axis: Some(i),
                    reduce_axis: 0,
                    candidates: template_factorizations(a.extent, SPATIAL_PARTS),
                });
            }
        }
        // First reduce axis knob.
        if !op.reduce.is_empty() {
            knobs.push(SplitKnob {
                spatial_axis: None,
                reduce_axis: 0,
                candidates: template_factorizations(op.reduce[0].extent, REDUCE_PARTS),
            });
        }
        let num_indices = knobs.len() + 1;
        Template {
            op,
            target,
            knobs,
            num_indices,
        }
    }

    /// The op this template schedules.
    pub fn op(&self) -> &ComputeOp {
        &self.op
    }

    /// Number of points in the template space.
    pub fn size(&self) -> f64 {
        2.0 * self
            .knobs
            .iter()
            .map(|k| k.candidates.len() as f64)
            .product::<f64>()
    }

    /// Width of an index vector.
    pub fn num_indices(&self) -> usize {
        self.num_indices
    }

    /// Samples a uniform random index vector.
    pub fn random_index(&self, rng: &mut impl Rng) -> Vec<usize> {
        let mut idx: Vec<usize> = self
            .knobs
            .iter()
            .map(|k| rng.gen_range(0..k.candidates.len()))
            .collect();
        idx.push(rng.gen_range(0..2));
        idx
    }

    /// Mutates one random knob of an index vector (the SA proposal move of
    /// AutoTVM's model-guided search).
    pub fn mutate(&self, idx: &[usize], rng: &mut impl Rng) -> Vec<usize> {
        let mut out = idx.to_vec();
        let k = rng.gen_range(0..self.num_indices);
        if k < self.knobs.len() {
            out[k] = rng.gen_range(0..self.knobs[k].candidates.len());
        } else {
            out[k] = 1 - out[k];
        }
        out
    }

    /// Materializes an index vector into a full schedule configuration
    /// (the template's fixed structure filled with the knob values).
    ///
    /// # Panics
    ///
    /// Panics if the index vector has the wrong width or out-of-range
    /// entries.
    pub fn to_config(&self, idx: &[usize]) -> NodeConfig {
        assert_eq!(idx.len(), self.num_indices, "bad index width");
        let mut cfg = NodeConfig::naive(&self.op);
        for (knob, &i) in self.knobs.iter().zip(idx) {
            let factors = knob.candidates[i].clone();
            match knob.spatial_axis {
                Some(a) => cfg.spatial_splits[a] = factors,
                None => cfg.reduce_splits[knob.reduce_axis] = factors,
            }
        }
        cfg.unroll = idx[self.num_indices - 1] == 1;
        cfg.vectorize = true;
        match self.target {
            TargetKind::Gpu => {
                cfg.cache_shared = true;
                cfg.fuse_outer = self.op.spatial.len();
            }
            TargetKind::Cpu => {
                cfg.fuse_outer = self.op.spatial.len().min(2);
            }
            TargetKind::Fpga => {
                cfg.fpga_pipeline = 3;
                cfg.fpga_partition = 4;
            }
        }
        cfg
    }

    /// Feature vector for the cost model: log-scaled knob factor values
    /// plus the unroll flag.
    pub fn features(&self, idx: &[usize]) -> Vec<f64> {
        let mut out = Vec::new();
        for (knob, &i) in self.knobs.iter().zip(idx) {
            for &f in &knob.candidates[i] {
                out.push((f as f64).log2() / 10.0);
            }
        }
        out.push(idx[self.num_indices - 1] as f64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factorization_enumeration_is_complete() {
        let f = enumerate_factorizations(8, 3);
        // 8 = 2^3 into 3 parts: C(5,2) = 10.
        assert_eq!(f.len(), 10);
        for v in &f {
            assert_eq!(v.iter().product::<i64>(), 8);
            assert_eq!(v.len(), 3);
        }
        assert_eq!(enumerate_factorizations(1, 4), vec![vec![1, 1, 1, 1]]);
    }

    #[test]
    fn template_space_is_much_smaller_than_flextensor() {
        let g = flextensor_ir::yolo::yolo_layer("C13").unwrap().graph(1);
        let t = Template::new(&g, TargetKind::Gpu);
        let flex = flextensor_explore::space::Space::new(&g, TargetKind::Gpu);
        let ratio = flex.size() / t.size();
        assert!(ratio > 100.0, "ratio {ratio:.0}");
    }

    #[test]
    fn configs_validate() {
        let g = ops::conv2d(ops::ConvParams::same(1, 64, 128, 3), 28, 28);
        let t = Template::new(&g, TargetKind::Gpu);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let idx = t.random_index(&mut rng);
            let cfg = t.to_config(&idx);
            cfg.validate(t.op()).unwrap();
            assert!(cfg.cache_shared);
        }
    }

    #[test]
    fn mutate_changes_exactly_one_knob() {
        let g = ops::gemm(64, 64, 64);
        let t = Template::new(&g, TargetKind::Gpu);
        let mut rng = StdRng::seed_from_u64(1);
        let idx = t.random_index(&mut rng);
        let m = t.mutate(&idx, &mut rng);
        let diffs = idx.iter().zip(&m).filter(|(a, b)| a != b).count();
        assert!(diffs <= 1);
    }

    #[test]
    fn features_are_stable_width() {
        let g = ops::gemm(64, 64, 64);
        let t = Template::new(&g, TargetKind::Gpu);
        let mut rng = StdRng::seed_from_u64(2);
        let w = t.features(&t.random_index(&mut rng)).len();
        for _ in 0..10 {
            assert_eq!(t.features(&t.random_index(&mut rng)).len(), w);
        }
    }
}
