//! Gradient-boosted regression trees — the XGBoost-style cost model
//! AutoTVM uses to rank candidate configurations (§6.5).
//!
//! Implemented from scratch: CART-style regression trees grown by greedy
//! variance reduction, boosted on residuals with a shrinkage factor. The
//! model is small (tens of trees over tens of features), trained
//! repeatedly during tuning, so simplicity beats generality here.

/// One node of a regression tree (flattened into an arena).
#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree of at most `max_depth` splits with at least
    /// `min_samples` rows per leaf.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or row widths differ from each other.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        max_depth: usize,
        min_samples: usize,
    ) -> RegressionTree {
        assert!(!xs.is_empty() && xs.len() == ys.len(), "bad training set");
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut nodes = Vec::new();
        Self::build(xs, ys, &idx, max_depth, min_samples.max(1), &mut nodes);
        RegressionTree { nodes }
    }

    fn build(
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &[usize],
        depth: usize,
        min_samples: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        if depth == 0 || idx.len() < 2 * min_samples {
            nodes.push(Node::Leaf(mean));
            return nodes.len() - 1;
        }
        // Find the (feature, threshold) minimizing weighted variance.
        let nfeat = xs[idx[0]].len();
        let base_sse: f64 = idx.iter().map(|&i| (ys[i] - mean).powi(2)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        #[allow(clippy::needless_range_loop)] // `f` is data (stored in the split)
        for f in 0..nfeat {
            let mut vals: Vec<(f64, f64)> = idx.iter().map(|&i| (xs[i][f], ys[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            // Prefix sums for O(n) split evaluation.
            let n = vals.len();
            let total_sum: f64 = vals.iter().map(|(_, y)| y).sum();
            let total_sq: f64 = vals.iter().map(|(_, y)| y * y).sum();
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            for k in 0..n - 1 {
                lsum += vals[k].1;
                lsq += vals[k].1 * vals[k].1;
                if vals[k].0 == vals[k + 1].0 {
                    continue; // cannot split between equal values
                }
                let ln = (k + 1) as f64;
                let rn = (n - k - 1) as f64;
                if (ln as usize) < min_samples || (rn as usize) < min_samples {
                    continue;
                }
                let lsse = lsq - lsum * lsum / ln;
                let rsum = total_sum - lsum;
                let rsse = (total_sq - lsq) - rsum * rsum / rn;
                let sse = lsse + rsse;
                if best.as_ref().is_none_or(|&(_, _, b)| sse < b) {
                    best = Some((f, (vals[k].0 + vals[k + 1].0) / 2.0, sse));
                }
            }
        }
        match best {
            Some((feature, threshold, sse)) if sse < base_sse - 1e-12 => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| xs[i][feature] <= threshold);
                let slot = nodes.len();
                nodes.push(Node::Leaf(mean)); // placeholder
                let left = Self::build(xs, ys, &li, depth - 1, min_samples, nodes);
                let right = Self::build(xs, ys, &ri, depth - 1, min_samples, nodes);
                nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
            _ => {
                nodes.push(Node::Leaf(mean));
                nodes.len() - 1
            }
        }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted regression trees with squared loss.
#[derive(Debug, Clone, Default)]
pub struct Gbt {
    base: f64,
    shrinkage: f64,
    trees: Vec<RegressionTree>,
}

impl Gbt {
    /// Fits `n_trees` trees of depth `depth` with the given shrinkage
    /// (learning rate).
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, depth: usize, shrinkage: f64) -> Gbt {
        assert!(!xs.is_empty(), "empty training set");
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residual: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let tree = RegressionTree::fit(xs, &residual, depth, 2);
            for (r, x) in residual.iter_mut().zip(xs) {
                *r -= shrinkage * tree.predict(x);
            }
            trees.push(tree);
        }
        Gbt {
            base,
            shrinkage,
            trees,
        }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Whether the model has been fit.
    pub fn is_fit(&self) -> bool {
        !self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64 / 20.0, j as f64 / 20.0);
                xs.push(vec![x, y]);
                // A step function plus a slope: tree-friendly.
                ys.push(if x > 0.5 { 2.0 } else { 0.0 } + y);
            }
        }
        (xs, ys)
    }

    #[test]
    fn single_tree_learns_step() {
        let (xs, ys) = grid();
        let t = RegressionTree::fit(&xs, &ys, 4, 2);
        assert!(t.predict(&[0.9, 0.0]) > 1.5);
        assert!(t.predict(&[0.1, 0.0]) < 1.0);
    }

    #[test]
    fn boosting_reduces_error() {
        let (xs, ys) = grid();
        let g1 = Gbt::fit(&xs, &ys, 1, 3, 0.3);
        let g30 = Gbt::fit(&xs, &ys, 30, 3, 0.3);
        let mse = |g: &Gbt| {
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (g.predict(x) - y).powi(2))
                .sum::<f64>()
                / xs.len() as f64
        };
        assert!(mse(&g30) < mse(&g1) * 0.5, "{} vs {}", mse(&g30), mse(&g1));
    }

    #[test]
    fn predicts_constant_on_constant_targets() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![5.0, 5.0, 5.0];
        let g = Gbt::fit(&xs, &ys, 10, 3, 0.3);
        for x in &xs {
            assert!((g.predict(x) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ranks_better_configs_higher() {
        // y = -(x - 0.7)^2: peak at 0.7; model should rank 0.7 above 0.1.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -(x[0] - 0.7).powi(2)).collect();
        let g = Gbt::fit(&xs, &ys, 40, 4, 0.3);
        assert!(g.predict(&[0.7]) > g.predict(&[0.1]));
        assert!(g.predict(&[0.7]) > g.predict(&[0.99]));
    }

    #[test]
    fn unfit_model_reports_unfit() {
        assert!(!Gbt::default().is_fit());
        let g = Gbt::fit(&[vec![0.0]], &[1.0], 1, 1, 0.3);
        assert!(g.is_fit());
    }
}
