//! The AutoTVM tuning loop: batched measurement guided by a
//! gradient-boosted-trees cost model (§6.5's state-of-the-art baseline).
//!
//! Each round, the tuner (a) proposes a batch of candidate configurations
//! by simulated-annealing over the *model's* predicted scores (random when
//! the model is not yet trained), (b) measures the batch on the device,
//! (c) retrains the model on everything measured so far. This mirrors
//! real AutoTVM's `XGBTuner` with `plan_size` candidates per round.

use std::collections::BTreeSet;
use std::time::Instant;

use flextensor_explore::pool::{EvalPool, EvalStats};
use flextensor_ir::graph::Graph;
use flextensor_sim::model::{Cost, Evaluator};
use flextensor_telemetry::{config_key, Telemetry, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gbt::Gbt;
use crate::template::Template;

/// Tuning hyperparameters.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Measurement rounds.
    pub rounds: usize,
    /// Configurations measured per round (AutoTVM's `plan_size`).
    pub batch: usize,
    /// Fraction of each batch drawn uniformly at random (ε-greedy).
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Modeled compile+measure overhead per evaluation, seconds.
    pub measure_overhead_s: f64,
    /// Kernel repetitions per measurement.
    pub measure_repeats: u32,
    /// Stop early once the best time reaches this many seconds.
    pub stop_when_seconds: Option<f64>,
    /// Evaluation worker threads per measured batch (1 = serial, 0 = all
    /// cores). Results are identical for every value.
    pub eval_workers: usize,
    /// Approximate entry bound for the evaluation memo cache.
    pub cache_capacity: usize,
    /// Structured trace sink (disabled by default). When enabled, the
    /// tuner streams `run_started`, per-round `trial_started` /
    /// `candidate_evaluated` / `pool_stats` / `sa_step` records and a
    /// final `run_summary` — the same replayable JSONL schema the
    /// exploration drivers use (see `docs/TRACE_FORMAT.md`).
    pub telemetry: Telemetry,
}

impl Default for TuneOptions {
    fn default() -> TuneOptions {
        TuneOptions {
            rounds: 16,
            batch: 64,
            epsilon: 0.1,
            seed: 0xA070_7B3E,
            measure_overhead_s: 0.8,
            measure_repeats: 10,
            stop_when_seconds: None,
            eval_workers: 1,
            cache_capacity: 1 << 20,
            telemetry: Telemetry::null(),
        }
    }
}

/// One point of the tuning trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneTracePoint {
    /// Round index.
    pub round: usize,
    /// Cumulative measurements.
    pub measurements: usize,
    /// Cumulative modeled tuning time, seconds.
    pub exploration_time_s: f64,
    /// Best kernel time so far, seconds.
    pub best_seconds: f64,
    /// Best throughput so far, GFLOP/s.
    pub best_gflops: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found (as a full schedule config).
    pub best: flextensor_schedule::config::NodeConfig,
    /// Its cost.
    pub best_cost: Cost,
    /// Per-round trace.
    pub trace: Vec<TuneTracePoint>,
    /// Total measurements.
    pub measurements: usize,
    /// Total modeled tuning time, seconds.
    pub exploration_time_s: f64,
    /// Template space size.
    pub space_size: f64,
    /// Evaluation-layer statistics: fresh evaluations, cache hit rate,
    /// worker count, and real wall-clock spent evaluating.
    pub eval_stats: EvalStats,
}

/// Errors from tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneError(pub String);

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tuning failed: {}", self.0)
    }
}

impl std::error::Error for TuneError {}

/// Runs AutoTVM-style tuning of a graph on a device model.
///
/// # Errors
///
/// Returns [`TuneError`] when no feasible configuration is found.
pub fn tune(
    graph: &Graph,
    evaluator: &Evaluator,
    opts: &TuneOptions,
) -> Result<TuneResult, TuneError> {
    let template = Template::new(graph, evaluator.target());
    let mut pool = EvalPool::new(graph, evaluator, opts.eval_workers, opts.cache_capacity);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let clock = Instant::now();
    let tel = &opts.telemetry;
    if tel.is_enabled() {
        tel.emit(TraceEvent::RunStarted {
            method: "autotvm".to_string(),
            seed: opts.seed,
            trials: opts.rounds,
            starts: opts.batch,
            workers: pool.workers(),
            measure_overhead_s: opts.measure_overhead_s,
            measure_repeats: opts.measure_repeats,
            flops: graph.flops(),
        });
    }
    let mut visited: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new(); // score = normalized throughput
    let mut model = Gbt::default();

    let mut best: Option<(Vec<usize>, f64)> = None; // (index, seconds)
    let mut measurements = 0usize;
    let mut time_s = 0.0f64;
    let mut trace = Vec::new();
    let mut rounds_run = 0usize;

    'outer: for round in 0..opts.rounds {
        // ---- propose a batch --------------------------------------------
        let mut batch: Vec<Vec<usize>> = Vec::new();
        let mut guard = 0;
        while batch.len() < opts.batch && guard < opts.batch * 50 {
            guard += 1;
            let cand = if !model.is_fit() || rng.gen_bool(opts.epsilon) {
                template.random_index(&mut rng)
            } else {
                // Model-guided simulated annealing: a short hill climb
                // from a random point over predicted scores.
                let mut cur = template.random_index(&mut rng);
                let mut cur_score = model.predict(&template.features(&cur));
                for step in 0..20 {
                    let next = template.mutate(&cur, &mut rng);
                    let next_score = model.predict(&template.features(&next));
                    let temp = 1.0 - step as f64 / 20.0;
                    if next_score > cur_score || rng.gen_bool((0.1 * temp).clamp(0.0, 1.0)) {
                        cur = next;
                        cur_score = next_score;
                    }
                }
                cur
            };
            if visited.insert(cand.clone()) {
                batch.push(cand);
            }
        }
        if batch.is_empty() {
            break; // space exhausted
        }

        // ---- measure ----------------------------------------------------
        // The whole batch goes through the evaluation pool at once —
        // fresh points fan out over the workers, repeats come back from
        // the memo cache for free. The reduction below runs in batch
        // order, so the tuner is deterministic in the worker count.
        let configs: Vec<_> = batch.iter().map(|idx| template.to_config(idx)).collect();
        rounds_run = round + 1;
        if tel.is_enabled() {
            tel.emit(TraceEvent::TrialStarted {
                trial: round + 1,
                starts: batch.len(),
                wall_s: clock.elapsed().as_secs_f64(),
            });
        }
        let outcomes = pool.evaluate_batch(&configs);
        pool.emit_stats(tel, round + 1);
        let mut round_best_e = 0.0f64;
        let mut improved = false;
        for (i, (idx, oc)) in batch.iter().zip(outcomes).enumerate() {
            if tel.is_enabled() {
                tel.emit(TraceEvent::CandidateEvaluated {
                    trial: round + 1,
                    key: config_key(&configs[i].encode()),
                    seconds: oc.cost.map(|c| c.seconds),
                    fresh: oc.fresh,
                });
            }
            if oc.fresh {
                measurements += 1;
                time_s += opts.measure_overhead_s;
                if let Some(c) = oc.cost {
                    time_s += opts.measure_repeats as f64 * c.seconds;
                }
            }
            let score = match oc.cost {
                Some(c) => {
                    if best.as_ref().is_none_or(|(_, b)| c.seconds < *b) {
                        best = Some((idx.clone(), c.seconds));
                        improved = true;
                    }
                    1.0 / c.seconds
                }
                None => 0.0,
            };
            if score > round_best_e {
                round_best_e = score;
            }
            xs.push(template.features(idx));
            ys.push(score);
            if let (Some(target), Some((_, s))) = (opts.stop_when_seconds, best.as_ref()) {
                if *s <= target {
                    trace.push(point(round, measurements, time_s, best.as_ref(), graph));
                    break 'outer;
                }
            }
        }

        if tel.is_enabled() {
            // One SA record per round: the model-guided proposal anneals
            // its acceptance with `1 - round/rounds`; "accepted" marks
            // rounds that improved the global best.
            tel.emit(TraceEvent::SaStep {
                trial: round + 1,
                temperature: 1.0 - round as f64 / opts.rounds.max(1) as f64,
                energy: round_best_e,
                accepted: improved,
            });
        }

        // ---- retrain the cost model --------------------------------------
        // Normalize scores to [0, 1] for stable tree fitting.
        let max_score = ys.iter().cloned().fold(0.0f64, f64::max).max(1e-30);
        let norm: Vec<f64> = ys.iter().map(|y| y / max_score).collect();
        model = Gbt::fit(&xs, &norm, 20, 4, 0.3);

        trace.push(point(round, measurements, time_s, best.as_ref(), graph));
    }

    let (best_idx, seconds) = best.ok_or_else(|| TuneError("no feasible config".into()))?;
    if tel.is_enabled() {
        let s = pool.stats();
        tel.emit(TraceEvent::RunSummary {
            trials: rounds_run,
            measurements,
            exploration_time_s: time_s,
            best_seconds: seconds,
            best_gflops: graph.flops() as f64 / seconds / 1e9,
            evaluated: s.evaluated,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            wall_s: clock.elapsed().as_secs_f64(),
        });
        tel.flush();
    }
    Ok(TuneResult {
        best: template.to_config(&best_idx),
        best_cost: Cost {
            seconds,
            flops: graph.flops(),
        },
        trace,
        measurements,
        exploration_time_s: time_s,
        space_size: template.size(),
        eval_stats: pool.stats(),
    })
}

fn point(
    round: usize,
    measurements: usize,
    time_s: f64,
    best: Option<&(Vec<usize>, f64)>,
    graph: &Graph,
) -> TuneTracePoint {
    let (best_seconds, best_gflops) = match best {
        Some((_, s)) => (*s, graph.flops() as f64 / s / 1e9),
        None => (f64::INFINITY, 0.0),
    };
    TuneTracePoint {
        round,
        measurements,
        exploration_time_s: time_s,
        best_seconds,
        best_gflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::spec::{v100, Device};

    fn quick() -> TuneOptions {
        TuneOptions {
            rounds: 4,
            batch: 16,
            ..TuneOptions::default()
        }
    }

    #[test]
    fn tuner_finds_feasible_config() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let r = tune(&g, &ev, &quick()).unwrap();
        assert!(r.best_cost.gflops() > 0.0);
        assert!(r.measurements > 0);
        assert!(r.space_size > 10.0);
        r.best.validate(g.root_op()).unwrap();
    }

    #[test]
    fn tuner_improves_across_rounds() {
        let g = ops::gemm(512, 512, 512);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let mut opts = quick();
        opts.rounds = 8;
        let r = tune(&g, &ev, &opts).unwrap();
        let first = r.trace.first().unwrap().best_gflops;
        let last = r.trace.last().unwrap().best_gflops;
        assert!(last >= first);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ops::gemm(128, 128, 128);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let a = tune(&g, &ev, &quick()).unwrap();
        let b = tune(&g, &ev, &quick()).unwrap();
        assert_eq!(a.best_cost.seconds, b.best_cost.seconds);
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn stop_when_seconds_terminates_early() {
        let g = ops::gemm(256, 256, 256);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let full = tune(&g, &ev, &quick()).unwrap();
        let mut opts = quick();
        opts.stop_when_seconds = Some(full.best_cost.seconds * 8.0);
        let early = tune(&g, &ev, &opts).unwrap();
        assert!(early.measurements <= full.measurements);
    }

    #[test]
    fn works_on_cpu_and_small_ops() {
        let g = ops::gemv(512, 512);
        let ev = Evaluator::new(Device::Cpu(flextensor_sim::spec::xeon_e5_2699_v4()));
        let r = tune(&g, &ev, &quick()).unwrap();
        assert!(r.best_cost.seconds.is_finite());
    }
}
