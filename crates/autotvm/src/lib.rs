//! # flextensor-autotvm
//!
//! An AutoTVM-like baseline for the §6.5 comparison: hand-written schedule
//! **templates** (a fixed structure with a few tunable knobs — the thing
//! FlexTensor eliminates), a from-scratch **gradient-boosted-trees cost
//! model** standing in for XGBoost, and the batched **tuning loop** that
//! proposes candidates by simulated annealing over model predictions and
//! measures them in rounds.
//!
//! # Examples
//!
//! ```
//! use flextensor_ir::ops;
//! use flextensor_sim::{model::Evaluator, spec::{Device, v100}};
//! use flextensor_autotvm::tuner::{tune, TuneOptions};
//!
//! let g = ops::gemm(256, 256, 256);
//! let ev = Evaluator::new(Device::Gpu(v100()));
//! let opts = TuneOptions { rounds: 2, batch: 8, ..TuneOptions::default() };
//! let result = tune(&g, &ev, &opts)?;
//! assert!(result.best_cost.gflops() > 0.0);
//! # Ok::<(), flextensor_autotvm::tuner::TuneError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gbt;
pub mod template;
pub mod tuner;

pub use gbt::Gbt;
pub use template::Template;
pub use tuner::{tune, TuneOptions, TuneResult};
