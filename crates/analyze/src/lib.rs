//! Static schedule-legality and performance-lint analysis.
//!
//! FlexTensor's front end prunes the schedule space with *static*
//! structural analysis (§4.1–4.2); this crate grows that idea into a
//! diagnostic-driven analyzer over schedule configurations
//! ([`NodeConfig`]), lowered cost-model features
//! ([`KernelFeatures`]) and the lowered loop nest
//! ([`Stmt`](flextensor_schedule::nest::Stmt)). Rules live in a
//! [`registry`] behind the [`Lint`] trait and emit structured
//! [`Diagnostic`]s in three groups:
//!
//! * **legality** (`Error`) — split-shape/permutation/fuse validity,
//!   GPU thread/shared-memory/register capacity, FPGA PE/BRAM budgets and
//!   partition validity, and concurrent write-write races in the nest;
//! * **performance** (`Warn`/`Info`) — tail-remainder waste, unroll body
//!   blowup, strided vectorization, warp-granularity misfits, register
//!   spills, tiny grids;
//! * **determinism** (`Error`) — atomic-free parallel reductions.
//!
//! The feature-level legality rules replicate the infeasibility
//! arithmetic of the `flextensor-sim` cost models exactly, so an `Error`
//! verdict proves [`Evaluator::time_features`] would return `None`. That
//! soundness property lets the exploration layer prune `Error`-level
//! candidates *before* evaluation ([`gate_rejects`]) without changing
//! search results, and lets the conformance oracle check analyzer
//! verdicts differentially against the interpreter and cost models.
//!
//! See `docs/ANALYZE.md` for the rule catalog and the JSON report schema.
//!
//! [`Evaluator::time_features`]: flextensor_sim::model::Evaluator::time_features
//!
//! # Example
//!
//! ```
//! use flextensor_analyze::analyze_schedule;
//! use flextensor_ir::ops;
//! use flextensor_schedule::config::NodeConfig;
//! use flextensor_sim::spec::{v100, Device};
//!
//! let g = ops::gemm(64, 64, 64);
//! let report = analyze_schedule(&g, &NodeConfig::naive(g.root_op()), &Device::Gpu(v100()));
//! assert!(report.is_clean()); // naive schedules are legal (if slow)
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod region;
pub mod report;
pub mod rules;

pub use region::{analyze_region, FlagChoice, Region, RegionVerdict};
pub use report::{Diagnostic, Report, Severity};
pub use rules::{feature_legality, registry, AnalysisInput, Lint, RuleGroup};

use flextensor_ir::graph::Graph;
use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::features::KernelFeatures;
use flextensor_schedule::lower::lower;
use flextensor_sim::spec::Device;

/// Runs every registered rule on `input` and collects the findings.
pub fn analyze(input: &AnalysisInput<'_>) -> Report {
    let mut diags = Vec::new();
    for rule in registry() {
        rule.check(input, &mut diags);
    }
    Report::new(diags)
}

/// Analyzes a schedule end to end: config-level rules first; when the
/// config is `Error`-free, lowers it and runs the feature- and nest-level
/// rules as well.
///
/// A config whose config-level verdict is clean always lowers (the
/// config rules mirror `NodeConfig::validate`); if lowering still fails,
/// the failure is reported as a `legality/lowering-failed` diagnostic.
pub fn analyze_schedule(graph: &Graph, cfg: &NodeConfig, device: &Device) -> Report {
    let op = graph.root_op();
    let config_input = AnalysisInput {
        op,
        cfg,
        device,
        features: None,
        nest: None,
    };
    let pre = analyze(&config_input);
    if !pre.is_clean() {
        return pre;
    }
    match lower(graph, cfg, device.target()) {
        Ok(kernel) => analyze(&AnalysisInput {
            op,
            cfg,
            device,
            features: Some(&kernel.features),
            nest: Some(&kernel.stmts),
        }),
        Err(e) => {
            let mut diags = pre.diagnostics;
            diags.push(Diagnostic::new(
                "legality/lowering-failed",
                Severity::Error,
                "config",
                format!("config passed validation but failed to lower: {e}"),
                vec![],
            ));
            Report::new(diags)
        }
    }
}

/// The search-time pruning gate: returns the first feature-level legality
/// `Error` for these features on `device`, or `None` when the features
/// are statically feasible.
///
/// **Soundness contract**: `Some(_)` implies
/// [`Evaluator::time_features`](flextensor_sim::model::Evaluator::time_features)
/// returns `None` for the same features (the rules replicate the cost
/// models' infeasibility arithmetic), so pruning a rejected candidate
/// never changes which schedules the search can select. The converse does
/// not hold: the gate is not required to catch every infeasibility.
pub fn gate_rejects(device: &Device, features: &KernelFeatures) -> Option<Diagnostic> {
    let mut diags = Vec::new();
    feature_legality(device, features, &mut diags);
    diags.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_sim::model::Evaluator;
    use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4};

    fn devices() -> [Device; 3] {
        [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ]
    }

    #[test]
    fn naive_small_gemm_is_error_free_everywhere() {
        // Small enough that even the naive schedule's PE count (= spatial
        // domain) fits the VU9P budget.
        let g = ops::gemm(8, 6, 4);
        let cfg = NodeConfig::naive(g.root_op());
        for d in devices() {
            let r = analyze_schedule(&g, &cfg, &d);
            assert!(r.is_clean(), "{}: {}", d.name(), r.render_text());
        }
    }

    #[test]
    fn invalid_split_is_reported_at_config_level() {
        let g = ops::gemm(64, 32, 16);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits[1] = vec![3, 1, 1, 1];
        let r = analyze_schedule(&g, &cfg, &Device::Gpu(v100()));
        assert!(!r.is_clean());
        let d = &r.diagnostics[0];
        assert_eq!(d.rule, "legality/split-shape");
        assert_eq!(d.span, "spatial_splits[1]");
    }

    #[test]
    fn oversized_block_is_rejected_and_gate_agrees_with_evaluator() {
        let g = ops::gemm(256, 256, 256);
        let mut cfg = NodeConfig::naive(g.root_op());
        // 64x64 = 4096 threads per block.
        cfg.spatial_splits = vec![vec![1, 1, 64, 4], vec![1, 1, 64, 4]];
        let device = Device::Gpu(v100());
        let r = analyze_schedule(&g, &cfg, &device);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == "legality/gpu-thread-count"));
        let ev = Evaluator::new(device.clone());
        let kernel = lower(&g, &cfg, device.target()).unwrap();
        assert!(gate_rejects(&device, &kernel.features).is_some());
        assert!(ev.evaluate(&g, &cfg).is_none());
    }

    #[test]
    fn gate_passes_feasible_features() {
        let g = ops::gemm(256, 256, 256);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.spatial_splits = vec![vec![8, 1, 16, 2], vec![8, 1, 16, 2]];
        cfg.reduce_splits = vec![vec![64, 2, 2]];
        cfg.cache_shared = true;
        for d in devices() {
            let kernel = lower(&g, &cfg, d.target()).unwrap();
            assert!(gate_rejects(&d, &kernel.features).is_none(), "{}", d.name());
            assert!(Evaluator::new(d.clone()).evaluate(&g, &cfg).is_some());
        }
    }

    #[test]
    fn fpga_pe_overflow_is_rejected() {
        let g = ops::conv2d(ops::ConvParams::same(1, 64, 64, 3), 28, 28);
        let mut cfg = NodeConfig::naive(g.root_op());
        // 64*28 = 1792 PEs > 1368 budget (axes b, k, i, j).
        cfg.spatial_splits = vec![
            vec![1, 1, 1, 1],
            vec![1, 1, 64, 1],
            vec![28, 1, 1, 1],
            vec![1, 1, 1, 28],
        ];
        let device = Device::Fpga(vu9p());
        let r = analyze_schedule(&g, &cfg, &device);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == "legality/fpga-pe-budget"));
        assert!(Evaluator::new(device).evaluate(&g, &cfg).is_none());
    }

    #[test]
    fn report_json_contains_rule_ids() {
        let g = ops::gemm(64, 32, 16);
        let mut cfg = NodeConfig::naive(g.root_op());
        cfg.fuse_outer = 9;
        let r = analyze_schedule(&g, &cfg, &Device::Cpu(xeon_e5_2699_v4()));
        assert!(r.to_json().contains("\"rule\":\"legality/fuse-depth\""));
    }
}
