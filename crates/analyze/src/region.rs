//! Region analysis: sound cost bounds over *boxes* of schedule configs.
//!
//! PR-5's analyzer gate proves facts about single configs (`Error` ⇒ the
//! evaluator rejects the point). This module generalizes that contract
//! from points to boxes: a [`Region`] describes a set of [`NodeConfig`]s
//! — per-(axis, level) split-factor ranges plus a set of flag choices,
//! with every other coordinate fixed — and [`analyze_region`] returns
//! either a certificate that **every** member is statically illegal, or a
//! certified interval `[lo, hi]` enclosing the cost of every feasible
//! member.
//!
//! Soundness is compositional:
//!
//! 1. [`LoweredTemplate::feature_bounds`] encloses the lowered features of
//!    every member config between two corner feature rows (abstract
//!    transfer functions of the feature kernels over the box);
//! 2. [`Evaluator::time_features_interval`] runs the cost models over
//!    those rows in outward-rounded interval arithmetic
//!    ([`flextensor_sim::Interval`]), so the result encloses the concrete
//!    `f64` cost of every feature row inside the bounds — and `None`
//!    proves every such row infeasible.
//!
//! The exploration layer uses these verdicts as a branch-and-bound gate
//! (`SearchOptions::region_gate`): regions whose certified lower bound
//! exceeds the incumbent best cannot contain an improvement, and
//! `Illegal` regions cannot contain a feasible candidate at all.
//!
//! [`LoweredTemplate::feature_bounds`]: flextensor_schedule::template::LoweredTemplate::feature_bounds
//! [`Evaluator::time_features_interval`]: flextensor_sim::model::Evaluator::time_features_interval

use flextensor_schedule::config::NodeConfig;
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::model::Evaluator;

use crate::report::{Diagnostic, Severity};

/// One binary schedule flag inside a region: pinned to a value, or free
/// to take either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagChoice {
    /// The flag takes exactly this value for every member.
    Fixed(bool),
    /// Members with the flag off and members with it on both belong.
    Both,
}

impl FlagChoice {
    /// The concrete values members may take, in deterministic order.
    pub fn options(self) -> &'static [bool] {
        match self {
            FlagChoice::Fixed(false) => &[false],
            FlagChoice::Fixed(true) => &[true],
            FlagChoice::Both => &[false, true],
        }
    }

    /// Whether a member may carry `value` for this flag.
    pub fn admits(self, value: bool) -> bool {
        match self {
            FlagChoice::Fixed(v) => v == value,
            FlagChoice::Both => true,
        }
    }

    /// The least choice admitting both the current members and `value`.
    pub fn join(self, value: bool) -> FlagChoice {
        if self.admits(value) {
            self
        } else {
            FlagChoice::Both
        }
    }
}

/// A box of schedule configs: inclusive per-(axis, level) split-factor
/// ranges and per-flag [`FlagChoice`]s, with the discrete coordinates
/// (reorder permutation, `fuse_outer`, FPGA partition/pipeline) fixed for
/// every member.
///
/// A config is a **member** iff it is a valid schedule whose factors lie
/// inside the ranges, whose flags are admitted, and whose discrete
/// coordinates equal the region's (see [`Region::contains`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Carries the fixed discrete coordinates; its splits are ignored in
    /// favor of the ranges below.
    base: NodeConfig,
    /// Inclusive `(lo, hi)` range per spatial axis and split level.
    spatial_ranges: Vec<Vec<(i64, i64)>>,
    /// Inclusive `(lo, hi)` range per reduce axis and split level.
    reduce_ranges: Vec<Vec<(i64, i64)>>,
    /// Admissible `unroll` values.
    unroll: FlagChoice,
    /// Admissible `vectorize` values.
    vectorize: FlagChoice,
    /// Admissible `cache_shared` values.
    cache_shared: FlagChoice,
    /// Admissible `inline_data` values.
    inline_data: FlagChoice,
}

/// The result of [`analyze_region`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegionVerdict {
    /// Certificate that every member config is statically illegal: the
    /// evaluator returns `None` for each of them (or the region is empty
    /// of valid schedules outright). Carries the first proof found.
    Illegal(Diagnostic),
    /// Certified cost bounds: every member config with a concrete cost
    /// `s` satisfies `lo <= s <= hi`.
    Bounded {
        /// Certified lower bound on every member's cost in seconds.
        lo: f64,
        /// Certified upper bound on every member's cost in seconds.
        hi: f64,
    },
}

impl Region {
    /// The degenerate region containing exactly `cfg` (assuming `cfg` is
    /// a valid schedule).
    pub fn point(cfg: &NodeConfig) -> Region {
        Region {
            base: cfg.clone(),
            spatial_ranges: cfg
                .spatial_splits
                .iter()
                .map(|f| f.iter().map(|&x| (x, x)).collect())
                .collect(),
            reduce_ranges: cfg
                .reduce_splits
                .iter()
                .map(|f| f.iter().map(|&x| (x, x)).collect())
                .collect(),
            unroll: FlagChoice::Fixed(cfg.unroll),
            vectorize: FlagChoice::Fixed(cfg.vectorize),
            cache_shared: FlagChoice::Fixed(cfg.cache_shared),
            inline_data: FlagChoice::Fixed(cfg.inline_data),
        }
    }

    /// Builds a region directly from per-(axis, level) factor ranges and
    /// flag choices; the discrete coordinates (reorder, fuse, FPGA
    /// partition/pipeline) are taken from `base`.
    ///
    /// # Errors
    ///
    /// Fails when a range list's shape differs from `base`'s split shape,
    /// or when any range is inverted or admits factors below 1.
    pub fn from_ranges(
        base: NodeConfig,
        spatial_ranges: Vec<Vec<(i64, i64)>>,
        reduce_ranges: Vec<Vec<(i64, i64)>>,
        unroll: FlagChoice,
        vectorize: FlagChoice,
        cache_shared: FlagChoice,
        inline_data: FlagChoice,
    ) -> Result<Region, String> {
        for (kind, ranges, splits) in [
            ("spatial_splits", &spatial_ranges, &base.spatial_splits),
            ("reduce_splits", &reduce_ranges, &base.reduce_splits),
        ] {
            if ranges.len() != splits.len() {
                return Err(format!(
                    "{kind}: expected ranges for {} axes, got {}",
                    splits.len(),
                    ranges.len()
                ));
            }
            for (i, (r, f)) in ranges.iter().zip(splits).enumerate() {
                if r.len() != f.len() {
                    return Err(format!(
                        "{kind}[{i}]: expected {} levels, got {}",
                        f.len(),
                        r.len()
                    ));
                }
                for &(lo, hi) in r {
                    if lo < 1 || lo > hi {
                        return Err(format!("{kind}[{i}]: bad factor range [{lo}, {hi}]"));
                    }
                }
            }
        }
        Ok(Region {
            base,
            spatial_ranges,
            reduce_ranges,
            unroll,
            vectorize,
            cache_shared,
            inline_data,
        })
    }

    /// Widens the region to admit `cfg`: factor ranges take the
    /// componentwise hull, flags join. Fails (leaving the region
    /// unchanged) when `cfg` disagrees on a discrete coordinate or has a
    /// different split shape — those cannot be joined into a box.
    pub fn include(&mut self, cfg: &NodeConfig) -> Result<(), String> {
        let b = &self.base;
        if cfg.reorder != b.reorder || cfg.fuse_outer != b.fuse_outer {
            return Err("reorder: configs with different reorder/fuse cannot join a region".into());
        }
        if cfg.fpga_partition != b.fpga_partition || cfg.fpga_pipeline != b.fpga_pipeline {
            return Err(
                "fpga_partition: configs with different FPGA coordinates cannot join a region"
                    .into(),
            );
        }
        if cfg.spatial_splits.len() != self.spatial_ranges.len()
            || cfg
                .spatial_splits
                .iter()
                .zip(&self.spatial_ranges)
                .any(|(f, r)| f.len() != r.len())
            || cfg.reduce_splits.len() != self.reduce_ranges.len()
            || cfg
                .reduce_splits
                .iter()
                .zip(&self.reduce_ranges)
                .any(|(f, r)| f.len() != r.len())
        {
            return Err("spatial_splits: split shape differs from the region's".into());
        }
        for (ranges, factors) in self.spatial_ranges.iter_mut().zip(&cfg.spatial_splits) {
            for (r, &x) in ranges.iter_mut().zip(factors) {
                r.0 = r.0.min(x);
                r.1 = r.1.max(x);
            }
        }
        for (ranges, factors) in self.reduce_ranges.iter_mut().zip(&cfg.reduce_splits) {
            for (r, &x) in ranges.iter_mut().zip(factors) {
                r.0 = r.0.min(x);
                r.1 = r.1.max(x);
            }
        }
        self.unroll = self.unroll.join(cfg.unroll);
        self.vectorize = self.vectorize.join(cfg.vectorize);
        self.cache_shared = self.cache_shared.join(cfg.cache_shared);
        self.inline_data = self.inline_data.join(cfg.inline_data);
        Ok(())
    }

    /// The smallest region containing every config (their join). `None`
    /// when the slice is empty or the configs disagree on a discrete
    /// coordinate.
    pub fn join(configs: &[NodeConfig]) -> Option<Region> {
        let (first, rest) = configs.split_first()?;
        let mut region = Region::point(first);
        for cfg in rest {
            region.include(cfg).ok()?;
        }
        Some(region)
    }

    /// Membership test: `cfg` agrees on every discrete coordinate, its
    /// factors lie inside the ranges, and its flags are admitted. (Whether
    /// `cfg` is a *valid schedule* is a separate question; `analyze_region`
    /// verdicts only quantify over members that are.)
    pub fn contains(&self, cfg: &NodeConfig) -> bool {
        let b = &self.base;
        cfg.reorder == b.reorder
            && cfg.fuse_outer == b.fuse_outer
            && cfg.fpga_partition == b.fpga_partition
            && cfg.fpga_pipeline == b.fpga_pipeline
            && cfg.spatial_splits.len() == self.spatial_ranges.len()
            && cfg
                .spatial_splits
                .iter()
                .zip(&self.spatial_ranges)
                .all(|(f, r)| {
                    f.len() == r.len() && f.iter().zip(r).all(|(&x, &(lo, hi))| lo <= x && x <= hi)
                })
            && cfg.reduce_splits.len() == self.reduce_ranges.len()
            && cfg
                .reduce_splits
                .iter()
                .zip(&self.reduce_ranges)
                .all(|(f, r)| {
                    f.len() == r.len() && f.iter().zip(r).all(|(&x, &(lo, hi))| lo <= x && x <= hi)
                })
            && self.unroll.admits(cfg.unroll)
            && self.vectorize.admits(cfg.vectorize)
            && self.cache_shared.admits(cfg.cache_shared)
            && self.inline_data.admits(cfg.inline_data)
    }

    /// The config with the fixed discrete coordinates (splits are not
    /// meaningful on it).
    pub fn base(&self) -> &NodeConfig {
        &self.base
    }

    /// Inclusive `(lo, hi)` factor ranges per spatial axis and level.
    pub fn spatial_ranges(&self) -> &[Vec<(i64, i64)>] {
        &self.spatial_ranges
    }

    /// Inclusive `(lo, hi)` factor ranges per reduce axis and level.
    pub fn reduce_ranges(&self) -> &[Vec<(i64, i64)>] {
        &self.reduce_ranges
    }

    /// The number of distinct flag assignments members may take (1–16).
    pub fn flag_assignment_count(&self) -> usize {
        self.unroll.options().len()
            * self.vectorize.options().len()
            * self.cache_shared.options().len()
            * self.inline_data.options().len()
    }

    /// The box corners for one flag assignment: `lo` carries every factor
    /// at its range minimum, `hi` at its maximum, both with the given
    /// flags and the region's discrete coordinates.
    fn corners(&self, flags: [bool; 4]) -> (NodeConfig, NodeConfig) {
        let mut lo = self.base.clone();
        let mut hi = self.base.clone();
        lo.spatial_splits = self
            .spatial_ranges
            .iter()
            .map(|r| r.iter().map(|&(l, _)| l).collect())
            .collect();
        hi.spatial_splits = self
            .spatial_ranges
            .iter()
            .map(|r| r.iter().map(|&(_, h)| h).collect())
            .collect();
        lo.reduce_splits = self
            .reduce_ranges
            .iter()
            .map(|r| r.iter().map(|&(l, _)| l).collect())
            .collect();
        hi.reduce_splits = self
            .reduce_ranges
            .iter()
            .map(|r| r.iter().map(|&(_, h)| h).collect())
            .collect();
        for c in [&mut lo, &mut hi] {
            c.unroll = flags[0];
            c.vectorize = flags[1];
            c.cache_shared = flags[2];
            c.inline_data = flags[3];
        }
        (lo, hi)
    }

    /// Every flag assignment members may take, as `[unroll, vectorize,
    /// cache_shared, inline_data]`, in deterministic order.
    fn flag_assignments(&self) -> Vec<[bool; 4]> {
        let mut out = Vec::with_capacity(self.flag_assignment_count());
        for &u in self.unroll.options() {
            for &v in self.vectorize.options() {
                for &c in self.cache_shared.options() {
                    for &i in self.inline_data.options() {
                        out.push([u, v, c, i]);
                    }
                }
            }
        }
        out
    }
}

/// Analyzes a region against a template and evaluator: returns
/// [`RegionVerdict::Illegal`] with a proof when no member config can have
/// a concrete cost, or certified cost bounds enclosing every member's
/// cost.
///
/// The certificate is checked in three stages, cheapest first:
///
/// 1. **Split-shape necessity** (config level): a valid member's factors
///    multiply exactly to each axis extent, so `prod(range los) > extent`
///    or `prod(range his) < extent` proves the region empty. Diagnostics
///    use the [`NodeConfig::validate`] span format
///    (`spatial_splits[i]: ...`).
/// 2. **Box structure**: malformed regions (shape mismatch against the
///    template's root op, factors below 1) are empty of valid members by
///    the same argument `NodeConfig::validate` makes pointwise.
/// 3. **Interval cost evaluation**: per flag assignment (at most 16),
///    feature bounds feed the interval cost models; `None` for every
///    assignment proves the evaluator rejects every member. Otherwise the
///    verdict is the hull of the per-assignment cost intervals.
pub fn analyze_region(tpl: &LoweredTemplate, region: &Region, ev: &Evaluator) -> RegionVerdict {
    let root = tpl.root();
    // Stage 1: necessary conditions on the factor products.
    for (kind, axes, ranges) in [
        ("spatial_splits", &root.spatial, region.spatial_ranges()),
        ("reduce_splits", &root.reduce, region.reduce_ranges()),
    ] {
        for (i, (axis, r)) in axes.iter().zip(ranges).enumerate() {
            let prod_lo: i64 = r.iter().map(|&(l, _)| l.max(1)).product();
            let prod_hi: i64 = r.iter().map(|&(_, h)| h.max(1)).product();
            if prod_lo > axis.extent || prod_hi < axis.extent {
                return RegionVerdict::Illegal(Diagnostic::new(
                    "legality/region-split-shape",
                    Severity::Error,
                    format!("{kind}[{i}]"),
                    format!(
                        "axis {}: no member's factors can multiply to extent {} \
                         (range products span [{prod_lo}, {prod_hi}])",
                        axis.name, axis.extent
                    ),
                    vec![
                        ("extent", axis.extent),
                        ("prod_lo", prod_lo),
                        ("prod_hi", prod_hi),
                    ],
                ));
            }
        }
    }

    // Stages 2 and 3: per flag assignment, feature bounds + interval cost.
    let mut hull: Option<(f64, f64)> = None;
    for flags in region.flag_assignments() {
        let (lo_cfg, hi_cfg) = region.corners(flags);
        let (f_lo, f_hi) = match tpl.feature_bounds(&lo_cfg, &hi_cfg) {
            Ok(b) => b,
            Err(e) => {
                // A box the template rejects structurally (shape mismatch,
                // factor below 1, bad reorder/fuse/FPGA coordinate) has no
                // valid members: NodeConfig::validate fails each of them
                // on the same grounds.
                return RegionVerdict::Illegal(Diagnostic::new(
                    "legality/region-split-shape",
                    Severity::Error,
                    "config",
                    format!("region is structurally empty: {}", e.0),
                    vec![],
                ));
            }
        };
        if let Some((lo, hi)) = ev.time_features_interval(&f_lo, &f_hi) {
            hull = Some(match hull {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
    }
    match hull {
        Some((lo, hi)) => RegionVerdict::Bounded { lo, hi },
        None => RegionVerdict::Illegal(Diagnostic::new(
            "legality/region-infeasible",
            Severity::Error,
            "features",
            format!(
                "every member of the region is statically infeasible on {}: \
                 the interval cost model rejects all {} flag assignments",
                ev.device().name(),
                region.flag_assignment_count()
            ),
            vec![],
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;
    use flextensor_schedule::config::TargetKind;
    use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};

    fn gemm_cfg(sp: Vec<Vec<i64>>, rd: Vec<i64>) -> NodeConfig {
        let g = ops::gemm(64, 32, 16);
        let mut c = NodeConfig::naive(g.root_op());
        c.spatial_splits = sp;
        c.reduce_splits = vec![rd];
        c
    }

    #[test]
    fn join_and_membership() {
        let a = gemm_cfg(vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]], vec![4, 2, 2]);
        let mut b = gemm_cfg(vec![vec![2, 2, 2, 8], vec![8, 1, 2, 2]], vec![2, 4, 2]);
        b.unroll = true;
        let region = Region::join(&[a.clone(), b.clone()]).unwrap();
        assert!(region.contains(&a));
        assert!(region.contains(&b));
        // A third config inside the hull is also a member.
        let mid = gemm_cfg(vec![vec![4, 2, 4, 2], vec![4, 1, 4, 2]], vec![4, 2, 2]);
        assert!(region.contains(&mid));
        // Outside the factor ranges → not a member.
        let out = gemm_cfg(vec![vec![16, 1, 4, 1], vec![2, 2, 4, 2]], vec![4, 2, 2]);
        assert!(!region.contains(&out));
        // unroll joined to Both, vectorize stayed Fixed(false).
        assert_eq!(region.flag_assignment_count(), 2);
        let mut vec_on = a.clone();
        vec_on.vectorize = true;
        assert!(!region.contains(&vec_on));
    }

    #[test]
    fn join_rejects_mismatched_discrete_coordinates() {
        let a = gemm_cfg(vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]], vec![4, 2, 2]);
        let mut b = a.clone();
        b.reorder = vec![1, 0];
        assert!(Region::join(&[a.clone(), b]).is_none());
        let mut c = a.clone();
        c.fpga_pipeline = 3;
        assert!(Region::join(&[a, c]).is_none());
    }

    #[test]
    fn point_region_bounds_contain_the_point_cost() {
        let g = ops::gemm(64, 32, 16);
        let cfg = gemm_cfg(vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]], vec![4, 2, 2]);
        for device in [
            Device::Gpu(v100()),
            Device::Cpu(xeon_e5_2699_v4()),
            Device::Fpga(vu9p()),
        ] {
            let tpl = LoweredTemplate::new(&g, device.target());
            let ev = Evaluator::new(device);
            let features = tpl.features(&cfg).unwrap();
            let concrete = ev.time_features(&features).unwrap();
            match analyze_region(&tpl, &Region::point(&cfg), &ev) {
                RegionVerdict::Bounded { lo, hi } => {
                    assert!(
                        lo <= concrete && concrete <= hi,
                        "{lo} <= {concrete} <= {hi}"
                    );
                }
                RegionVerdict::Illegal(d) => panic!("feasible point called illegal: {}", d.message),
            }
        }
    }

    #[test]
    fn joined_region_bounds_contain_every_member_cost() {
        let g = ops::gemm(64, 32, 16);
        let a = gemm_cfg(vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]], vec![4, 2, 2]);
        let mut b = gemm_cfg(vec![vec![2, 2, 2, 8], vec![8, 1, 2, 2]], vec![2, 4, 2]);
        b.unroll = true;
        b.cache_shared = true;
        let region = Region::join(&[a.clone(), b.clone()]).unwrap();
        let device = Device::Gpu(v100());
        let tpl = LoweredTemplate::new(&g, device.target());
        let ev = Evaluator::new(device);
        let RegionVerdict::Bounded { lo, hi } = analyze_region(&tpl, &region, &ev) else {
            panic!("feasible region called illegal");
        };
        for cfg in [&a, &b] {
            let s = ev.time_features(&tpl.features(cfg).unwrap()).unwrap();
            assert!(lo <= s && s <= hi, "{lo} <= {s} <= {hi}");
        }
    }

    #[test]
    fn impossible_split_products_are_illegal_with_validate_spans() {
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let ev = Evaluator::new(Device::Gpu(v100()));
        // Every factor of axis k at least 4 → product ≥ 64 > extent 16.
        let a = gemm_cfg(vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]], vec![4, 4, 4]);
        let mut region = Region::point(&a);
        let b = gemm_cfg(vec![vec![4, 2, 4, 2], vec![2, 2, 4, 2]], vec![8, 8, 8]);
        region.include(&b).unwrap();
        match analyze_region(&tpl, &region, &ev) {
            RegionVerdict::Illegal(d) => {
                assert_eq!(d.rule, "legality/region-split-shape");
                assert_eq!(d.span, "reduce_splits[0]");
                assert!(d.message.contains("extent 16"), "{}", d.message);
            }
            RegionVerdict::Bounded { .. } => panic!("empty region got bounds"),
        }
    }

    #[test]
    fn infeasible_gpu_regions_are_illegal_via_the_interval_models() {
        // Every member asks for ≥ 2048 threads per block — over V100's
        // 1024 limit, so the evaluator rejects all of them.
        let g = ops::gemm(64, 32, 16);
        let tpl = LoweredTemplate::new(&g, TargetKind::Gpu);
        let ev = Evaluator::new(Device::Gpu(v100()));
        let a = gemm_cfg(vec![vec![1, 1, 64, 1], vec![1, 1, 32, 1]], vec![16, 1, 1]);
        let region = Region::point(&a);
        match analyze_region(&tpl, &region, &ev) {
            RegionVerdict::Illegal(d) => {
                assert_eq!(d.rule, "legality/region-infeasible");
                assert!(ev.time_features(&tpl.features(&a).unwrap()).is_none());
            }
            RegionVerdict::Bounded { .. } => panic!("infeasible region got bounds"),
        }
    }
}
