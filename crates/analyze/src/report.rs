//! Structured diagnostics and reports.
//!
//! A [`Diagnostic`] is one finding of one rule: a stable rule id, a
//! severity, a span path naming the offending config field / feature /
//! loop, a human-readable message, and a machine-readable integer payload.
//! A [`Report`] is the ordered list of findings from one analysis run,
//! renderable as text or as deterministic JSON (see `docs/ANALYZE.md` for
//! the schema).

use std::fmt;

/// Severity of a diagnostic.
///
/// `Error` findings are *legality* facts: the schedule cannot execute
/// correctly (or at all) on the target, and the search-time gate may prune
/// it without evaluation. `Warn` and `Info` findings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory observation, no action needed.
    Info,
    /// Likely performance problem; the schedule still runs correctly.
    Warn,
    /// Legality violation: the schedule is invalid or infeasible.
    Error,
}

impl Severity {
    /// Lower-case name used in text and JSON rendering.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of one lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `legality/gpu-thread-count`.
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Span path of the offending entity: a config field
    /// (`spatial_splits[1]`), a feature (`features.block_threads`), or a
    /// loop path (`nest.k.0`).
    pub span: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// Machine-readable payload: named integer facts (measured value,
    /// device limit, ...), in deterministic order.
    pub payload: Vec<(&'static str, i64)>,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        span: impl Into<String>,
        message: impl Into<String>,
        payload: Vec<(&'static str, i64)>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            span: span.into(),
            message: message.into(),
            payload,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        )
    }
}

/// The ordered findings of one analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in registry-then-discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps a list of findings.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn` findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of `Info` findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether the schedule is free of legality violations (no `Error`s).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Renders the report as human-readable lines plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.error_count(),
            self.warn_count(),
            self.info_count()
        ));
        out
    }

    /// Renders the report as one deterministic JSON object (single line).
    ///
    /// Schema (version 1): `{"version":1,"errors":N,"warnings":N,
    /// "infos":N,"diagnostics":[{"rule":s,"severity":s,"span":s,
    /// "message":s,"payload":{k:v,...}},...]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"version\":1,\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.error_count(),
            self.warn_count(),
            self.info_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"severity\":\"{}\",\"span\":{},\"message\":{},\"payload\":{{",
                json_string(d.rule),
                d.severity,
                json_string(&d.span),
                json_string(&d.message)
            ));
            for (j, (k, v)) in d.payload.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{v}", json_string(k)));
            }
            s.push_str("}}");
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(vec![
            Diagnostic::new(
                "legality/gpu-thread-count",
                Severity::Error,
                "features.block_threads",
                "4096 threads per block exceed the device limit 1024",
                vec![("value", 4096), ("limit", 1024)],
            ),
            Diagnostic::new(
                "perf/tiny-grid",
                Severity::Info,
                "features.grid",
                "grid of 4 blocks underfills 80 SMs",
                vec![("value", 4), ("limit", 80)],
            ),
        ])
    }

    #[test]
    fn counts_by_severity() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 0);
        assert_eq!(r.info_count(), 1);
        assert!(!r.is_clean());
        assert!(Report::default().is_clean());
    }

    #[test]
    fn text_rendering_lists_findings_and_summary() {
        let t = sample().render_text();
        assert!(t.contains("error[legality/gpu-thread-count] features.block_threads:"));
        assert!(t.contains("info[perf/tiny-grid]"));
        assert!(t.ends_with("1 error(s), 0 warning(s), 1 info(s)\n"));
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"version\":1,\"errors\":1,\"warnings\":0,\"infos\":1,"));
        assert!(j.contains("\"payload\":{\"value\":4096,\"limit\":1024}"));
        assert_eq!(j, sample().to_json());
        let quoted = Report::new(vec![Diagnostic::new(
            "x",
            Severity::Warn,
            "s",
            "say \"hi\"\n",
            vec![],
        )]);
        assert!(quoted.to_json().contains("say \\\"hi\\\"\\n"));
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }
}
