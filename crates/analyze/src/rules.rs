//! The lint rules and their registry.
//!
//! Every rule implements [`Lint`] and inspects an [`AnalysisInput`]: the
//! scheduled op, its [`NodeConfig`], the target [`Device`], and — when the
//! config lowers — the derived [`KernelFeatures`] and loop nest. Rules are
//! grouped into **legality** (`Error`: the schedule is invalid or
//! infeasible on the device), **performance** (`Warn`/`Info` smells), and
//! **determinism** (unordered floating-point accumulation).
//!
//! The legality feature rules mirror the infeasibility checks of the
//! `flextensor-sim` cost models *exactly* (same integer arithmetic), so an
//! `Error` verdict proves the evaluator would return `None` — the property
//! the search-time pruning gate and the conformance oracle rely on.

use flextensor_ir::graph::ComputeOp;
use flextensor_schedule::config::{NodeConfig, REDUCE_PARTS, SPATIAL_PARTS};
use flextensor_schedule::features::KernelFeatures;
use flextensor_schedule::nest::Stmt;
use flextensor_sim::spec::{CpuSpec, Device, FpgaSpec, GpuSpec};

use crate::report::{Diagnostic, Severity};

/// Rule group, mirroring the id prefix (`legality/`, `perf/`,
/// `determinism/`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleGroup {
    /// Schedule validity and device feasibility (`Error`-level).
    Legality,
    /// Performance smells (`Warn`/`Info`-level).
    Performance,
    /// Reproducibility hazards.
    Determinism,
}

/// Everything a rule may inspect. `features` and `nest` are `None` when
/// the config does not lower (config-level rules still run).
#[derive(Debug, Clone, Copy)]
pub struct AnalysisInput<'a> {
    /// The compute op being scheduled.
    pub op: &'a ComputeOp,
    /// The schedule configuration under analysis.
    pub cfg: &'a NodeConfig,
    /// The target device model (source of capacity limits).
    pub device: &'a Device,
    /// Cost-model features of the lowered kernel, when available.
    pub features: Option<&'a KernelFeatures>,
    /// Top-level statements of the lowered kernel, when available.
    pub nest: Option<&'a [Stmt]>,
}

/// A single lint rule.
pub trait Lint {
    /// Stable rule id, e.g. `legality/gpu-thread-count`.
    fn id(&self) -> &'static str;
    /// The rule's group.
    fn group(&self) -> RuleGroup;
    /// Worst severity this rule can emit.
    fn severity(&self) -> Severity;
    /// One-line description for the rule catalog.
    fn description(&self) -> &'static str;
    /// Appends this rule's findings on `input` to `out`.
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>);
}

/// All rules, in deterministic catalog order (legality, determinism,
/// performance).
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(SplitShape),
        Box::new(Reorder),
        Box::new(FuseDepth),
        Box::new(FpgaPartition),
        Box::new(GpuThreadCount),
        Box::new(GpuSharedCapacity),
        Box::new(GpuRegisterPressure),
        Box::new(FpgaPeBudget),
        Box::new(FpgaBramCapacity),
        Box::new(ConcurrentWriteRace),
        Box::new(ParallelReduction),
        Box::new(TailRemainder),
        Box::new(UnrollBlowup),
        Box::new(VectorizeStrided),
        Box::new(WarpGranularity),
        Box::new(RegisterSpill),
        Box::new(TinyGrid),
    ]
}

fn err(
    rule: &'static str,
    span: impl Into<String>,
    message: impl Into<String>,
    payload: Vec<(&'static str, i64)>,
) -> Diagnostic {
    Diagnostic::new(rule, Severity::Error, span, message, payload)
}

// ---------------------------------------------------------------------
// Legality: config-level rules (mirror `NodeConfig::validate` spans).
// ---------------------------------------------------------------------

/// `legality/split-shape`: split factor lists must match the op's axes in
/// count and length, be positive, and multiply to each axis extent.
struct SplitShape;

impl Lint for SplitShape {
    fn id(&self) -> &'static str {
        "legality/split-shape"
    }
    fn group(&self) -> RuleGroup {
        RuleGroup::Legality
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "split factors must be positive and multiply to the axis extent"
    }
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let (op, cfg) = (input.op, input.cfg);
        if cfg.spatial_splits.len() != op.spatial.len() {
            out.push(err(
                self.id(),
                "spatial_splits",
                format!(
                    "expected {} spatial split lists, got {}",
                    op.spatial.len(),
                    cfg.spatial_splits.len()
                ),
                vec![
                    ("expected", op.spatial.len() as i64),
                    ("value", cfg.spatial_splits.len() as i64),
                ],
            ));
            return;
        }
        if cfg.reduce_splits.len() != op.reduce.len() {
            out.push(err(
                self.id(),
                "reduce_splits",
                format!(
                    "expected {} reduce split lists, got {}",
                    op.reduce.len(),
                    cfg.reduce_splits.len()
                ),
                vec![
                    ("expected", op.reduce.len() as i64),
                    ("value", cfg.reduce_splits.len() as i64),
                ],
            ));
            return;
        }
        type SplitGroup<'a> = (
            &'a str,
            &'a [flextensor_ir::graph::Axis],
            &'a [Vec<i64>],
            usize,
        );
        let groups: [SplitGroup<'_>; 2] = [
            (
                "spatial_splits",
                &op.spatial,
                &cfg.spatial_splits,
                SPATIAL_PARTS,
            ),
            (
                "reduce_splits",
                &op.reduce,
                &cfg.reduce_splits,
                REDUCE_PARTS,
            ),
        ];
        for (field, axes, splits, parts) in groups {
            for (i, (axis, f)) in axes.iter().zip(splits).enumerate() {
                let span = format!("{field}[{i}]");
                if f.len() != parts {
                    out.push(err(
                        self.id(),
                        span,
                        format!(
                            "axis {}: expected {parts} factors, got {}",
                            axis.name,
                            f.len()
                        ),
                        vec![("expected", parts as i64), ("value", f.len() as i64)],
                    ));
                    continue;
                }
                let prod: i64 = f.iter().product();
                if prod != axis.extent || f.iter().any(|&x| x < 1) {
                    out.push(err(
                        self.id(),
                        span,
                        format!(
                            "axis {}: factors {f:?} do not multiply to extent {}",
                            axis.name, axis.extent
                        ),
                        vec![("value", prod), ("expected", axis.extent)],
                    ));
                }
            }
        }
    }
}

/// `legality/reorder`: the reorder vector must be a permutation of the
/// spatial axes.
struct Reorder;

impl Lint for Reorder {
    fn id(&self) -> &'static str {
        "legality/reorder"
    }
    fn group(&self) -> RuleGroup {
        RuleGroup::Legality
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "reorder must be a permutation of the spatial axes"
    }
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let (op, cfg) = (input.op, input.cfg);
        let ns = op.spatial.len();
        if cfg.reorder.len() != ns {
            out.push(err(
                self.id(),
                "reorder",
                format!("expected {ns} reorder entries, got {}", cfg.reorder.len()),
                vec![("expected", ns as i64), ("value", cfg.reorder.len() as i64)],
            ));
            return;
        }
        let mut seen = vec![false; ns];
        for (i, &x) in cfg.reorder.iter().enumerate() {
            if x >= ns || seen[x] {
                out.push(err(
                    self.id(),
                    format!("reorder[{i}]"),
                    format!(
                        "entry {x} makes {:?} not a permutation of 0..{ns}",
                        cfg.reorder
                    ),
                    vec![("value", x as i64), ("limit", ns as i64 - 1)],
                ));
                return;
            }
            seen[x] = true;
        }
    }
}

/// `legality/fuse-depth`: `fuse_outer` must lie in `1..=spatial axes`.
struct FuseDepth;

impl Lint for FuseDepth {
    fn id(&self) -> &'static str {
        "legality/fuse-depth"
    }
    fn group(&self) -> RuleGroup {
        RuleGroup::Legality
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "fuse depth must be between 1 and the number of spatial axes"
    }
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let ns = input.op.spatial.len();
        let f = input.cfg.fuse_outer;
        if f < 1 || f > ns {
            out.push(err(
                self.id(),
                "fuse_outer",
                format!("fuse_outer {f} out of range 1..={ns}"),
                vec![("value", f as i64), ("limit", ns as i64)],
            ));
        }
    }
}

/// `legality/fpga-partition`: FPGA partition and pipeline parameters must
/// be in range (partition ≥ 1, pipeline in 1..=3).
struct FpgaPartition;

impl Lint for FpgaPartition {
    fn id(&self) -> &'static str {
        "legality/fpga-partition"
    }
    fn group(&self) -> RuleGroup {
        RuleGroup::Legality
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "FPGA partition factor and pipeline depth must be in range"
    }
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let cfg = input.cfg;
        if cfg.fpga_partition < 1 {
            out.push(err(
                self.id(),
                "fpga_partition",
                format!("partition factor {} must be >= 1", cfg.fpga_partition),
                vec![("value", cfg.fpga_partition), ("limit", 1)],
            ));
        }
        if cfg.fpga_pipeline < 1 || cfg.fpga_pipeline > 3 {
            out.push(err(
                self.id(),
                "fpga_pipeline",
                format!("pipeline depth {} out of range 1..=3", cfg.fpga_pipeline),
                vec![("value", cfg.fpga_pipeline), ("limit", 3)],
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Legality: feature-level rules (mirror the sim model feasibility checks).
// ---------------------------------------------------------------------

/// `legality/gpu-thread-count`: threads per block must be in
/// `1..=max_threads_per_block` (mirrors the first `gpu_time` check).
pub(crate) fn gpu_thread_count(spec: &GpuSpec, f: &KernelFeatures) -> Option<Diagnostic> {
    let tpb = f.block_threads;
    if tpb < 1 || tpb > spec.max_threads_per_block {
        return Some(err(
            "legality/gpu-thread-count",
            "features.block_threads",
            format!(
                "{tpb} threads per block outside 1..={} on {}",
                spec.max_threads_per_block, spec.name
            ),
            vec![("value", tpb), ("limit", spec.max_threads_per_block)],
        ));
    }
    None
}

/// `legality/gpu-shared-capacity`: staged shared memory must fit the
/// per-block budget (mirrors the second `gpu_time` check).
pub(crate) fn gpu_shared_capacity(spec: &GpuSpec, f: &KernelFeatures) -> Option<Diagnostic> {
    let shared_pb = if f.cache_shared {
        f.shared_bytes_per_block
    } else {
        0
    };
    if shared_pb > spec.shared_per_block {
        return Some(err(
            "legality/gpu-shared-capacity",
            "features.shared_bytes_per_block",
            format!(
                "{shared_pb} B of shared memory per block exceed the {} B budget on {}",
                spec.shared_per_block, spec.name
            ),
            vec![("value", shared_pb), ("limit", spec.shared_per_block)],
        ));
    }
    None
}

/// `legality/gpu-register-pressure`: at least one block must fit an SM
/// under the warp/shared/register occupancy limits (mirrors the
/// `blocks_per_sm < 1` check of `gpu_time`, same integer arithmetic).
pub(crate) fn gpu_register_pressure(spec: &GpuSpec, f: &KernelFeatures) -> Option<Diagnostic> {
    let tpb = f.block_threads;
    if tpb < 1 {
        return None; // covered by legality/gpu-thread-count
    }
    let shared_pb = if f.cache_shared {
        f.shared_bytes_per_block
    } else {
        0
    };
    let warps_pb = (tpb + 31) / 32;
    let blocks_by_warps = spec.max_warps_per_sm / warps_pb;
    let blocks_by_shared = if shared_pb > 0 {
        spec.shared_per_sm / shared_pb
    } else {
        spec.max_blocks_per_sm
    };
    let reg_bytes_pt = f.thread_reg_bytes.max(128);
    let blocks_by_regs = spec.regfile_per_sm / (reg_bytes_pt * tpb).max(1);
    let blocks_per_sm = blocks_by_warps
        .min(blocks_by_shared)
        .min(blocks_by_regs)
        .min(spec.max_blocks_per_sm);
    if blocks_per_sm < 1 {
        return Some(err(
            "legality/gpu-register-pressure",
            "features.thread_reg_bytes",
            format!(
                "no block fits an SM: {} register B/thread x {tpb} threads exceed the {} B \
                 register file (or shared memory) on {}",
                reg_bytes_pt, spec.regfile_per_sm, spec.name
            ),
            vec![
                ("value", reg_bytes_pt * tpb),
                ("limit", spec.regfile_per_sm),
                ("blocks_by_regs", blocks_by_regs),
                ("blocks_by_shared", blocks_by_shared),
            ],
        ));
    }
    None
}

/// `legality/fpga-pe-budget`: the PE count must fit the DSP budget
/// (mirrors the first `fpga_time` check).
pub(crate) fn fpga_pe_budget(spec: &FpgaSpec, f: &KernelFeatures) -> Option<Diagnostic> {
    let fp = f.fpga.as_ref()?;
    if fp.pe > spec.max_pe() {
        return Some(err(
            "legality/fpga-pe-budget",
            "features.fpga.pe",
            format!(
                "{} PEs exceed the {}-PE DSP budget on {}",
                fp.pe,
                spec.max_pe(),
                spec.name
            ),
            vec![("value", fp.pe), ("limit", spec.max_pe())],
        ));
    }
    None
}

/// `legality/fpga-bram-capacity`: on-chip buffers (double-buffered when
/// the pipeline overlaps) must fit BRAM (mirrors the second `fpga_time`
/// check).
pub(crate) fn fpga_bram_capacity(spec: &FpgaSpec, f: &KernelFeatures) -> Option<Diagnostic> {
    let fp = f.fpga.as_ref()?;
    let buffers = fp.buffer_bytes + fp.write_bytes;
    let bram_need = if fp.pipeline >= 2 {
        buffers * 2
    } else {
        buffers
    };
    if bram_need > spec.bram_bytes {
        return Some(err(
            "legality/fpga-bram-capacity",
            "features.fpga.buffer_bytes",
            format!(
                "{bram_need} B of buffers exceed the {} B BRAM on {}",
                spec.bram_bytes, spec.name
            ),
            vec![("value", bram_need), ("limit", spec.bram_bytes)],
        ));
    }
    None
}

/// Runs every feature-level legality rule for `device` on `f`, appending
/// findings to `out`. An appended `Error` proves
/// `Evaluator::time_features` returns `None` for these features.
pub fn feature_legality(device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>) {
    match device {
        Device::Gpu(spec) => {
            out.extend(gpu_thread_count(spec, f));
            out.extend(gpu_shared_capacity(spec, f));
            out.extend(gpu_register_pressure(spec, f));
        }
        Device::Cpu(_) => {} // the CPU model has no hard capacity limits
        Device::Fpga(spec) => {
            out.extend(fpga_pe_budget(spec, f));
            out.extend(fpga_bram_capacity(spec, f));
        }
    }
}

macro_rules! feature_lint {
    ($ty:ident, $id:literal, $group:ident, $sev:ident, $desc:literal, $body:expr) => {
        struct $ty;
        impl Lint for $ty {
            fn id(&self) -> &'static str {
                $id
            }
            fn group(&self) -> RuleGroup {
                RuleGroup::$group
            }
            fn severity(&self) -> Severity {
                Severity::$sev
            }
            fn description(&self) -> &'static str {
                $desc
            }
            fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
                let Some(f) = input.features else { return };
                #[allow(clippy::redundant_closure_call)]
                ($body)(input.device, f, out);
            }
        }
    };
}

feature_lint!(
    GpuThreadCount,
    "legality/gpu-thread-count",
    Legality,
    Error,
    "threads per block must be within the device limit",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Gpu(spec) = device {
            out.extend(gpu_thread_count(spec, f));
        }
    }
);

feature_lint!(
    GpuSharedCapacity,
    "legality/gpu-shared-capacity",
    Legality,
    Error,
    "staged shared memory must fit the per-block budget",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Gpu(spec) = device {
            out.extend(gpu_shared_capacity(spec, f));
        }
    }
);

feature_lint!(
    GpuRegisterPressure,
    "legality/gpu-register-pressure",
    Legality,
    Error,
    "at least one block must fit an SM under register/shared occupancy",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Gpu(spec) = device {
            out.extend(gpu_register_pressure(spec, f));
        }
    }
);

feature_lint!(
    FpgaPeBudget,
    "legality/fpga-pe-budget",
    Legality,
    Error,
    "instantiated PEs must fit the DSP budget",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Fpga(spec) = device {
            out.extend(fpga_pe_budget(spec, f));
        }
    }
);

feature_lint!(
    FpgaBramCapacity,
    "legality/fpga-bram-capacity",
    Legality,
    Error,
    "on-chip buffers (double-buffered when pipelined) must fit BRAM",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Fpga(spec) = device {
            out.extend(fpga_bram_capacity(spec, f));
        }
    }
);

// ---------------------------------------------------------------------
// Legality + determinism: nest-level dependence rules.
// ---------------------------------------------------------------------

/// Walks the nest; for every concurrent loop with extent > 1 and every
/// store in its subtree whose indices do not mention the loop variable,
/// calls `emit(loop_path, loop_var, store)`.
fn unindexed_concurrent_stores(stmts: &[Stmt], mut emit: impl FnMut(&str, &str, &Stmt)) {
    fn walk(
        s: &Stmt,
        concurrent: &mut Vec<(String, String)>, // (path, var)
        emit: &mut impl FnMut(&str, &str, &Stmt),
    ) {
        match s {
            Stmt::For {
                var,
                extent,
                kind,
                body,
            } => {
                let pushed = kind.is_concurrent() && *extent > 1;
                if pushed {
                    let path = match concurrent.last() {
                        Some((p, _)) => format!("{p}/{var}"),
                        None => format!("nest.{var}"),
                    };
                    concurrent.push((path, var.clone()));
                }
                for b in body {
                    walk(b, concurrent, emit);
                }
                if pushed {
                    concurrent.pop();
                }
            }
            Stmt::Store { indices, .. } => {
                let mut vars = Vec::new();
                for ix in indices {
                    ix.collect_vars(&mut vars);
                }
                for (path, var) in concurrent.iter() {
                    if !vars.iter().any(|v| v == var) {
                        emit(path, var, s);
                    }
                }
            }
            Stmt::StageIn { .. } => {}
        }
    }
    let mut stack = Vec::new();
    for s in stmts {
        walk(s, &mut stack, &mut emit);
    }
}

/// `legality/concurrent-write-race`: a non-reduction store inside a
/// concurrent loop whose indices do not depend on the loop variable —
/// distinct iterations write the same element (write-write race).
struct ConcurrentWriteRace;

impl Lint for ConcurrentWriteRace {
    fn id(&self) -> &'static str {
        "legality/concurrent-write-race"
    }
    fn group(&self) -> RuleGroup {
        RuleGroup::Legality
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "concurrent iterations must not write the same output element"
    }
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let Some(stmts) = input.nest else { return };
        unindexed_concurrent_stores(stmts, |path, var, store| {
            if let Stmt::Store { tensor, reduce, .. } = store {
                if !reduce {
                    out.push(err(
                        self.id(),
                        path,
                        format!(
                            "concurrent loop {var} writes {tensor} at indices independent \
                             of {var}: write-write race"
                        ),
                        vec![],
                    ));
                }
            }
        });
    }
}

/// `determinism/parallel-reduction`: a reduction update inside a
/// concurrent loop whose indices do not depend on the loop variable —
/// concurrent read-modify-write without atomics (also a data race), and
/// even with atomics the accumulation order is nondeterministic.
struct ParallelReduction;

impl Lint for ParallelReduction {
    fn id(&self) -> &'static str {
        "determinism/parallel-reduction"
    }
    fn group(&self) -> RuleGroup {
        RuleGroup::Determinism
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "reductions must not accumulate concurrently without atomics"
    }
    fn check(&self, input: &AnalysisInput<'_>, out: &mut Vec<Diagnostic>) {
        let Some(stmts) = input.nest else { return };
        unindexed_concurrent_stores(stmts, |path, var, store| {
            if let Stmt::Store { tensor, reduce, .. } = store {
                if *reduce {
                    out.push(err(
                        self.id(),
                        path,
                        format!(
                            "concurrent loop {var} accumulates into {tensor} at indices \
                             independent of {var}: atomic-free parallel reduction"
                        ),
                        vec![],
                    ));
                }
            }
        });
    }
}

// ---------------------------------------------------------------------
// Performance smells.
// ---------------------------------------------------------------------

/// Last-wave utilization of `work` units over `slots` parallel slots
/// (1.0 when work divides evenly or there is no work/slots).
fn wave_utilization(work: i64, slots: i64) -> f64 {
    if work < 1 || slots < 1 {
        return 1.0;
    }
    let waves = (work + slots - 1) / slots;
    work as f64 / (waves * slots) as f64
}

fn cpu_tail(spec: &CpuSpec, f: &KernelFeatures, out: &mut Vec<Diagnostic>) {
    let util = wave_utilization(f.parallel_chunks, spec.cores);
    if util < 0.75 {
        out.push(Diagnostic::new(
            "perf/tail-remainder",
            Severity::Warn,
            "features.parallel_chunks",
            format!(
                "{} parallel chunks leave the last wave of {} cores {:.0}% utilized",
                f.parallel_chunks,
                spec.cores,
                util * 100.0
            ),
            vec![("value", f.parallel_chunks), ("limit", spec.cores)],
        ));
    }
}

fn gpu_tail(spec: &GpuSpec, f: &KernelFeatures, out: &mut Vec<Diagnostic>) {
    // Mirror the occupancy arithmetic to find the real block slots; only
    // meaningful for feasible kernels.
    let tpb = f.block_threads;
    if tpb < 1 || tpb > spec.max_threads_per_block {
        return;
    }
    let shared_pb = if f.cache_shared {
        f.shared_bytes_per_block
    } else {
        0
    };
    if shared_pb > spec.shared_per_block {
        return;
    }
    let warps_pb = (tpb + 31) / 32;
    let blocks_by_warps = spec.max_warps_per_sm / warps_pb;
    let blocks_by_shared = if shared_pb > 0 {
        spec.shared_per_sm / shared_pb
    } else {
        spec.max_blocks_per_sm
    };
    let reg_bytes_pt = f.thread_reg_bytes.max(128);
    let blocks_by_regs = spec.regfile_per_sm / (reg_bytes_pt * tpb).max(1);
    let blocks_per_sm = blocks_by_warps
        .min(blocks_by_shared)
        .min(blocks_by_regs)
        .min(spec.max_blocks_per_sm);
    if blocks_per_sm < 1 {
        return;
    }
    let slots = spec.sms * blocks_per_sm;
    let util = wave_utilization(f.grid, slots);
    if util < 0.75 {
        out.push(Diagnostic::new(
            "perf/tail-remainder",
            Severity::Warn,
            "features.grid",
            format!(
                "{} blocks leave the last wave of {} block slots {:.0}% utilized",
                f.grid,
                slots,
                util * 100.0
            ),
            vec![("value", f.grid), ("limit", slots)],
        ));
    }
}

feature_lint!(
    TailRemainder,
    "perf/tail-remainder",
    Performance,
    Warn,
    "work should divide evenly over parallel execution slots",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        match device {
            Device::Cpu(spec) => cpu_tail(spec, f, out),
            Device::Gpu(spec) => gpu_tail(spec, f, out),
            Device::Fpga(_) => {}
        }
    }
);

/// Unrolled statements above this count blow up the instruction stream.
const UNROLL_BODY_LIMIT: i64 = 256;

feature_lint!(
    UnrollBlowup,
    "perf/unroll-blowup",
    Performance,
    Warn,
    "unrolled body size should stay within the instruction budget",
    |_device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        let body = f.thread_tile * f.reduce_inner;
        if f.unroll && body > UNROLL_BODY_LIMIT {
            out.push(Diagnostic::new(
                "perf/unroll-blowup",
                Severity::Warn,
                "features.thread_tile",
                format!(
                    "unrolling a {body}-statement body (tile {} x inner reduce {}) blows up \
                     the instruction stream",
                    f.thread_tile, f.reduce_inner
                ),
                vec![("value", body), ("limit", UNROLL_BODY_LIMIT)],
            ));
        }
    }
);

feature_lint!(
    VectorizeStrided,
    "perf/vectorize-strided",
    Performance,
    Warn,
    "vectorization requires a unit-stride innermost loop",
    |_device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if f.vector_len > 1 && !f.contiguous_inner {
            out.push(Diagnostic::new(
                "perf/vectorize-strided",
                Severity::Warn,
                "features.vector_len",
                format!(
                    "vector length {} on a non-contiguous innermost loop forces gather/scatter",
                    f.vector_len
                ),
                vec![("value", f.vector_len), ("limit", 1)],
            ));
        }
    }
);

feature_lint!(
    WarpGranularity,
    "perf/warp-granularity",
    Performance,
    Warn,
    "threads per block should be a multiple of the warp size",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Gpu(spec) = device {
            let tpb = f.block_threads;
            if tpb >= 1 && tpb <= spec.max_threads_per_block && tpb % 32 != 0 {
                let warps_pb = (tpb + 31) / 32;
                let eff = tpb as f64 / (warps_pb * 32) as f64;
                out.push(Diagnostic::new(
                    "perf/warp-granularity",
                    Severity::Warn,
                    "features.block_threads",
                    format!(
                        "{tpb} threads per block is not a multiple of the 32-thread warp \
                         ({:.0}% lane utilization)",
                        eff * 100.0
                    ),
                    vec![("value", tpb), ("limit", 32)],
                ));
            }
        }
    }
);

/// Register bytes per thread above this spill to local memory (mirrors
/// the `gpu_time` spill penalty threshold).
const REGISTER_SPILL_LIMIT: i64 = 1024;

feature_lint!(
    RegisterSpill,
    "perf/register-spill",
    Performance,
    Warn,
    "oversized register tiles spill to local memory",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Gpu(_) = device {
            let reg_bytes_pt = f.thread_reg_bytes.max(128);
            if reg_bytes_pt > REGISTER_SPILL_LIMIT {
                out.push(Diagnostic::new(
                    "perf/register-spill",
                    Severity::Warn,
                    "features.thread_reg_bytes",
                    format!(
                        "{reg_bytes_pt} register B/thread exceed the {REGISTER_SPILL_LIMIT} B \
                         spill threshold"
                    ),
                    vec![("value", reg_bytes_pt), ("limit", REGISTER_SPILL_LIMIT)],
                ));
            }
        }
    }
);

feature_lint!(
    TinyGrid,
    "perf/tiny-grid",
    Performance,
    Info,
    "the grid should launch at least one block per SM",
    |device: &Device, f: &KernelFeatures, out: &mut Vec<Diagnostic>| {
        if let Device::Gpu(spec) = device {
            if f.grid >= 1 && f.grid < spec.sms {
                out.push(Diagnostic::new(
                    "perf/tiny-grid",
                    Severity::Info,
                    "features.grid",
                    format!(
                        "{} blocks underfill the {} SMs of {}",
                        f.grid, spec.sms, spec.name
                    ),
                    vec![("value", f.grid), ("limit", spec.sms)],
                ));
            }
        }
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::expr::Expr;
    use flextensor_ir::graph::Combiner;
    use flextensor_schedule::nest::LoopKind;

    #[test]
    fn registry_ids_are_unique_and_prefixed_by_group() {
        let rules = registry();
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rules.len(), "duplicate rule id");
        for r in &rules {
            let prefix = match r.group() {
                RuleGroup::Legality => "legality/",
                RuleGroup::Performance => "perf/",
                RuleGroup::Determinism => "determinism/",
            };
            assert!(r.id().starts_with(prefix), "{} vs {:?}", r.id(), r.group());
            assert!(!r.description().is_empty());
        }
    }

    #[test]
    fn wave_utilization_math() {
        assert_eq!(wave_utilization(44, 22), 1.0);
        assert_eq!(wave_utilization(33, 22), 0.75);
        assert_eq!(wave_utilization(0, 22), 1.0);
        assert!(wave_utilization(1, 80) < 0.05);
    }

    #[test]
    fn race_walker_finds_unindexed_concurrent_store() {
        // parallel i { O[0] = i } — indices independent of i.
        let nest = vec![Stmt::loop_(
            "i",
            4,
            LoopKind::Parallel,
            vec![Stmt::Store {
                tensor: "O".into(),
                indices: vec![Expr::int(0)],
                value: Expr::var("i"),
                reduce: false,
                combiner: Combiner::Sum,
            }],
        )];
        let mut hits = Vec::new();
        unindexed_concurrent_stores(&nest, |path, var, _| {
            hits.push((path.to_string(), var.to_string()));
        });
        assert_eq!(hits, vec![("nest.i".to_string(), "i".to_string())]);
    }

    #[test]
    fn race_walker_skips_serial_unit_and_indexed_loops() {
        // serial k and extent-1 parallel j are exempt; indexed i is fine.
        let store = Stmt::Store {
            tensor: "O".into(),
            indices: vec![Expr::var("i")],
            value: Expr::var("k"),
            reduce: false,
            combiner: Combiner::Sum,
        };
        let nest = vec![Stmt::loop_(
            "i",
            4,
            LoopKind::ThreadIdx,
            vec![Stmt::loop_(
                "j",
                1,
                LoopKind::Parallel,
                vec![Stmt::loop_("k", 8, LoopKind::Serial, vec![store])],
            )],
        )];
        let mut hits = 0;
        unindexed_concurrent_stores(&nest, |_, _, _| hits += 1);
        assert_eq!(hits, 0);
    }
}
