//! Network layer configurations used throughout the paper's evaluation:
//! the 15 distinct YOLO-v1 convolution layers of Table 4 (the C2D case
//! study of §6.3 and Figs. 1, 6, 7), the full 24-conv-layer YOLO-v1 and the
//! 5-conv-layer OverFeat networks used for the end-to-end DNN study (§6.6).

use crate::graph::Graph;
use crate::ops::{conv2d, ConvParams};

/// One convolution layer configuration (a row of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    /// Layer label, e.g. `"C1"`.
    pub name: &'static str,
    /// Input channels (`C`).
    pub in_channels: i64,
    /// Output channels (`K`).
    pub out_channels: i64,
    /// Input height = width (`H/W`).
    pub size: i64,
    /// Kernel size (`k`).
    pub kernel: i64,
    /// Stride (`st`).
    pub stride: i64,
    /// Zero padding (YOLO uses "same" padding: `k / 2`).
    pub padding: i64,
}

impl ConvLayer {
    /// Builds the layer's mini-graph at the given batch size.
    pub fn graph(&self, batch: i64) -> Graph {
        conv2d(self.params(batch), self.size, self.size)
    }

    /// Convolution parameters at the given batch size.
    pub fn params(&self, batch: i64) -> ConvParams {
        ConvParams {
            batch,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
            dilation: 1,
            groups: 1,
        }
    }

    /// Output spatial extent.
    pub fn out_size(&self) -> i64 {
        self.params(1).out_size(self.size)
    }

    /// FLOPs at the given batch size (multiply-add counted as 2).
    pub fn flops(&self, batch: i64) -> u64 {
        let o = self.out_size();
        2 * (batch * self.out_channels * o * o) as u64
            * (self.in_channels * self.kernel * self.kernel) as u64
    }

    /// Whether a Winograd fast algorithm applies (3×3, stride 1, dilation 1)
    /// — the condition under which cuDNN switches algorithms (§6.3).
    pub fn winograd_eligible(&self) -> bool {
        self.kernel == 3 && self.stride == 1
    }
}

const fn layer(
    name: &'static str,
    in_channels: i64,
    out_channels: i64,
    size: i64,
    kernel: i64,
    stride: i64,
) -> ConvLayer {
    ConvLayer {
        name,
        in_channels,
        out_channels,
        size,
        kernel,
        stride,
        padding: kernel / 2,
    }
}

/// The 15 distinctive convolution layers of YOLO-v1 (Table 4).
pub const YOLO_LAYERS: [ConvLayer; 15] = [
    layer("C1", 3, 64, 448, 7, 2),
    layer("C2", 64, 192, 112, 3, 1),
    layer("C3", 192, 128, 56, 1, 1),
    layer("C4", 128, 256, 56, 3, 1),
    layer("C5", 256, 256, 56, 1, 1),
    layer("C6", 256, 512, 56, 3, 1),
    layer("C7", 512, 256, 28, 1, 1),
    layer("C8", 256, 512, 28, 3, 1),
    layer("C9", 512, 512, 28, 1, 1),
    layer("C10", 512, 1024, 28, 3, 1),
    layer("C11", 1024, 512, 14, 1, 1),
    layer("C12", 512, 1024, 14, 3, 1),
    layer("C13", 1024, 1024, 14, 3, 1),
    layer("C14", 1024, 1024, 14, 3, 2),
    layer("C15", 1024, 1024, 7, 3, 1),
];

/// Looks up a Table 4 layer by label (`"C1"` … `"C15"`).
pub fn yolo_layer(name: &str) -> Option<&'static ConvLayer> {
    YOLO_LAYERS.iter().find(|l| l.name == name)
}

/// The full 24-conv-layer YOLO-v1 network (§6.6), expressed as (layer,
/// multiplicity) over the distinct Table 4 configurations. Multiplicities
/// sum to 24.
pub const YOLO_V1_FULL: [(&str, usize); 15] = [
    ("C1", 1),
    ("C2", 1),
    ("C3", 1),
    ("C4", 1),
    ("C5", 1),
    ("C6", 1),
    ("C7", 4),
    ("C8", 4),
    ("C9", 1),
    ("C10", 1),
    ("C11", 2),
    ("C12", 2),
    ("C13", 1),
    ("C14", 1),
    ("C15", 2),
];

/// The 5 convolution layers of OverFeat (fast model), used in §6.6.
pub const OVERFEAT_LAYERS: [ConvLayer; 5] = [
    ConvLayer {
        name: "OF1",
        in_channels: 3,
        out_channels: 96,
        size: 231,
        kernel: 11,
        stride: 4,
        padding: 0,
    },
    ConvLayer {
        name: "OF2",
        in_channels: 96,
        out_channels: 256,
        size: 24,
        kernel: 5,
        stride: 1,
        padding: 0,
    },
    ConvLayer {
        name: "OF3",
        in_channels: 256,
        out_channels: 512,
        size: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    },
    ConvLayer {
        name: "OF4",
        in_channels: 512,
        out_channels: 1024,
        size: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    },
    ConvLayer {
        name: "OF5",
        in_channels: 1024,
        out_channels: 1024,
        size: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_distinct_layers() {
        assert_eq!(YOLO_LAYERS.len(), 15);
        for (i, l) in YOLO_LAYERS.iter().enumerate() {
            assert_eq!(l.name, format!("C{}", i + 1));
        }
    }

    #[test]
    fn full_network_has_24_conv_layers() {
        let total: usize = YOLO_V1_FULL.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 24);
        for (name, _) in YOLO_V1_FULL {
            assert!(yolo_layer(name).is_some(), "unknown layer {name}");
        }
    }

    #[test]
    fn c1_shapes() {
        let l = yolo_layer("C1").unwrap();
        assert_eq!(l.out_size(), 224);
        let g = l.graph(1);
        assert_eq!(g.output().shape, vec![1, 64, 224, 224]);
    }

    #[test]
    fn c14_stride_two_halves_resolution() {
        let l = yolo_layer("C14").unwrap();
        assert_eq!(l.out_size(), 7);
    }

    #[test]
    fn flops_match_graph_flops() {
        for l in &YOLO_LAYERS {
            assert_eq!(l.flops(1), l.graph(1).flops(), "layer {}", l.name);
        }
    }

    #[test]
    fn flops_in_paper_range() {
        // Table 3 reports C2D FLOPs between 77M and 3.7G at batch 1 (the
        // range is approximate; C10 computes ~7.4 GFLOPs by direct count).
        for l in &YOLO_LAYERS {
            let f = l.flops(1);
            assert!(f >= 70_000_000, "{}: {f}", l.name);
            assert!(f <= 8_000_000_000, "{}: {f}", l.name);
        }
    }

    #[test]
    fn winograd_eligibility() {
        assert!(yolo_layer("C4").unwrap().winograd_eligible());
        assert!(yolo_layer("C6").unwrap().winograd_eligible());
        assert!(!yolo_layer("C1").unwrap().winograd_eligible()); // 7x7 s2
        assert!(!yolo_layer("C3").unwrap().winograd_eligible()); // 1x1
        assert!(!yolo_layer("C14").unwrap().winograd_eligible()); // s2
    }

    #[test]
    fn overfeat_output_sizes_are_positive() {
        for l in &OVERFEAT_LAYERS {
            assert!(l.out_size() >= 1, "layer {}", l.name);
            let g = l.graph(1);
            assert_eq!(g.output().shape[1], l.out_channels);
        }
    }
}
