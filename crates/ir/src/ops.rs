//! Constructors for every tensor operator evaluated in the paper.
//!
//! Table 1 / Table 3 operators: GEMV, GEMM, Bilinear, 1D/2D/3D convolution,
//! transposed 1D/2D/3D convolution, group / depthwise / dilated convolution —
//! plus the two "new operators" of §6.4: block-circulant matrix multiply
//! (BCM) and the shift operation (SHO).
//!
//! Each constructor returns a validated [`Graph`]. Convolutions are built as
//! multi-node mini-graphs (explicit zero-padding node, and for transposed
//! convolutions an additional stride-dilation node), matching the node counts
//! the paper reports in Table 3 (`#node` = 2 for direct convolutions, 3 for
//! transposed ones, 1 for the matmul family).

use crate::expr::Expr;
use crate::graph::{Axis, Combiner, Graph, GraphBuilder};

fn v(name: &str) -> Expr {
    Expr::var(name)
}

/// Matrix-vector multiply: `O[i] = Σ_k A[i,k] · B[k]`.
///
/// # Panics
///
/// Panics if any dimension is < 1.
pub fn gemv(n: i64, k: i64) -> Graph {
    let mut b = GraphBuilder::new(format!("gemv_n{n}_k{k}"));
    b.placeholder("A", vec![n, k]);
    b.placeholder("B", vec![k]);
    b.compute(
        "gemv",
        "O",
        vec![Axis::new("i", n)],
        vec![Axis::new("k", k)],
        Expr::load("A", vec![v("i"), v("k")]) * Expr::load("B", vec![v("k")]),
        Combiner::Sum,
    );
    b.finish().expect("gemv graph is well-formed")
}

/// Matrix-matrix multiply: `O[i,j] = Σ_k A[i,k] · B[k,j]`.
///
/// # Panics
///
/// Panics if any dimension is < 1.
pub fn gemm(n: i64, m: i64, k: i64) -> Graph {
    let mut b = GraphBuilder::new(format!("gemm_n{n}_m{m}_k{k}"));
    b.placeholder("A", vec![n, k]);
    b.placeholder("B", vec![k, m]);
    b.compute(
        "gemm",
        "O",
        vec![Axis::new("i", n), Axis::new("j", m)],
        vec![Axis::new("k", k)],
        Expr::load("A", vec![v("i"), v("k")]) * Expr::load("B", vec![v("k"), v("j")]),
        Combiner::Sum,
    );
    b.finish().expect("gemm graph is well-formed")
}

/// Bilinear transformation: `O[i,j] = Σ_{k,l} A[i,k] · B[j,k,l] · C[i,l]`.
///
/// # Panics
///
/// Panics if any dimension is < 1.
pub fn bilinear(n: i64, m: i64, k: i64, l: i64) -> Graph {
    let mut b = GraphBuilder::new(format!("bilinear_n{n}_m{m}_k{k}_l{l}"));
    b.placeholder("A", vec![n, k]);
    b.placeholder("B", vec![m, k, l]);
    b.placeholder("C", vec![n, l]);
    b.compute(
        "bilinear",
        "O",
        vec![Axis::new("i", n), Axis::new("j", m)],
        vec![Axis::new("k", k), Axis::new("l", l)],
        Expr::load("A", vec![v("i"), v("k")])
            * Expr::load("B", vec![v("j"), v("k"), v("l")])
            * Expr::load("C", vec![v("i"), v("l")]),
        Combiner::Sum,
    );
    b.finish().expect("bilinear graph is well-formed")
}

/// Parameters shared by all direct convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvParams {
    /// Batch size.
    pub batch: i64,
    /// Input channels (total, across groups).
    pub in_channels: i64,
    /// Output channels (total, across groups).
    pub out_channels: i64,
    /// Kernel size, same along every spatial dimension.
    pub kernel: i64,
    /// Stride, same along every spatial dimension.
    pub stride: i64,
    /// Zero padding, same along every spatial dimension.
    pub padding: i64,
    /// Kernel dilation, same along every spatial dimension.
    pub dilation: i64,
    /// Number of groups (1 = dense convolution).
    pub groups: i64,
}

impl ConvParams {
    /// Dense, stride-1, "same"-style convolution (padding = kernel/2).
    pub fn same(batch: i64, in_channels: i64, out_channels: i64, kernel: i64) -> ConvParams {
        ConvParams {
            batch,
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: kernel / 2,
            dilation: 1,
            groups: 1,
        }
    }

    /// Stride/padding override on top of [`ConvParams::same`].
    pub fn with_stride(mut self, stride: i64) -> ConvParams {
        self.stride = stride;
        self
    }

    /// Dilation override.
    pub fn with_dilation(mut self, dilation: i64) -> ConvParams {
        self.dilation = dilation;
        self
    }

    /// Groups override.
    pub fn with_groups(mut self, groups: i64) -> ConvParams {
        self.groups = groups;
        self
    }

    /// Output spatial extent for an input spatial extent `len`.
    pub fn out_size(&self, len: i64) -> i64 {
        (len + 2 * self.padding - self.dilation * (self.kernel - 1) - 1) / self.stride + 1
    }

    fn validate(&self, spatial: &[i64]) {
        assert!(self.batch >= 1, "batch must be >= 1");
        assert!(self.in_channels >= 1 && self.out_channels >= 1);
        assert!(self.kernel >= 1 && self.stride >= 1 && self.dilation >= 1);
        assert!(self.padding >= 0, "padding must be >= 0");
        assert!(self.groups >= 1, "groups must be >= 1");
        assert!(
            self.in_channels % self.groups == 0 && self.out_channels % self.groups == 0,
            "channels must divide evenly into groups"
        );
        for &s in spatial {
            assert!(
                self.out_size(s) >= 1,
                "kernel {k} (dilation {d}) does not fit input extent {s} with padding {p}",
                k = self.kernel,
                d = self.dilation,
                p = self.padding,
            );
        }
    }
}

/// Spatial dimension names used by the N-d convolution builders, innermost
/// last: 1-D uses `i`; 2-D uses `i, j`; 3-D uses `d, i, j`.
const SPATIAL_NAMES: [&str; 3] = ["d", "i", "j"];
/// Reduce dimension names paired with [`SPATIAL_NAMES`].
const REDUCE_NAMES: [&str; 3] = ["rd", "rx", "ry"];

fn spatial_names(ndim: usize) -> &'static [&'static str] {
    &SPATIAL_NAMES[3 - ndim..]
}

fn reduce_names(ndim: usize) -> &'static [&'static str] {
    &REDUCE_NAMES[3 - ndim..]
}

/// Adds an explicit zero-padding node reading `src` (shape `[batch, ch,
/// spatial...]`) and producing `dst` padded by `pad` on each side of each
/// spatial dim. Returns the padded spatial extents.
#[allow(clippy::too_many_arguments)]
fn add_pad_node(
    b: &mut GraphBuilder,
    node: &str,
    src: &str,
    dst: &str,
    batch: i64,
    channels: i64,
    spatial: &[i64],
    pad: i64,
) -> Vec<i64> {
    let ndim = spatial.len();
    let names = spatial_names(ndim);
    let mut axes = vec![Axis::new("b", batch), Axis::new("c", channels)];
    let mut src_idx = vec![v("b"), v("c")];
    let mut cond: Option<crate::expr::Cond> = None;
    let mut out_spatial = Vec::with_capacity(ndim);
    for (dim, &s) in spatial.iter().enumerate() {
        let name = names[dim];
        axes.push(Axis::new(name, s + 2 * pad));
        out_spatial.push(s + 2 * pad);
        src_idx.push(v(name) - pad);
        let inside = v(name)
            .ge(Expr::int(pad))
            .and(v(name).lt(Expr::int(s + pad)));
        cond = Some(match cond {
            None => inside,
            Some(c) => c.and(inside),
        });
    }
    let body = match cond {
        Some(c) if pad > 0 => Expr::select(c, Expr::load(src, src_idx), Expr::float(0.0)),
        // pad == 0: the node degenerates to a copy; keep it so the graph
        // structure (and Table 3 node counts) are shape-independent.
        _ => Expr::load(src, src_idx),
    };
    b.compute(node, dst, axes, vec![], body, Combiner::Sum);
    out_spatial
}

/// Core N-dimensional direct convolution: pad node + conv node.
fn conv_nd(kind: &str, p: ConvParams, spatial: &[i64]) -> Graph {
    p.validate(spatial);
    let ndim = spatial.len();
    assert!((1..=3).contains(&ndim), "1, 2 or 3 spatial dims supported");
    let names = spatial_names(ndim);
    let rnames = reduce_names(ndim);
    let cpg = p.in_channels / p.groups; // channels per group
    let kpg = p.out_channels / p.groups; // out-channels per group

    let dims: String = spatial.iter().map(|s| format!("x{s}")).collect();
    let mut b = GraphBuilder::new(format!(
        "{kind}_b{}_c{}_k{}{}_ker{}_s{}_p{}_d{}_g{}",
        p.batch,
        p.in_channels,
        p.out_channels,
        dims,
        p.kernel,
        p.stride,
        p.padding,
        p.dilation,
        p.groups
    ));

    let mut in_shape = vec![p.batch, p.in_channels];
    in_shape.extend_from_slice(spatial);
    b.placeholder("I", in_shape);
    let mut w_shape = vec![p.out_channels, cpg];
    w_shape.extend(std::iter::repeat_n(p.kernel, ndim));
    b.placeholder("W", w_shape);

    b.attr("ndim", ndim as i64)
        .attr("batch", p.batch)
        .attr("in_channels", p.in_channels)
        .attr("out_channels", p.out_channels)
        .attr("kernel", p.kernel)
        .attr("stride", p.stride)
        .attr("padding", p.padding)
        .attr("dilation", p.dilation)
        .attr("groups", p.groups);
    for (dim, &s) in spatial.iter().enumerate() {
        b.attr(format!("spatial{dim}"), s);
    }

    add_pad_node(
        &mut b,
        "pad",
        "I",
        "P",
        p.batch,
        p.in_channels,
        spatial,
        p.padding,
    );

    // Conv node.
    let mut sp_axes = vec![Axis::new("b", p.batch), Axis::new("k", p.out_channels)];
    let mut rd_axes = vec![Axis::new("rc", cpg)];
    let mut p_idx = vec![v("b")];
    // Input channel: group base + rc. For dense conv groups == 1 and the
    // expression simplifies to rc.
    let in_ch = if p.groups == 1 {
        v("rc")
    } else {
        (v("k") / kpg) * cpg + v("rc")
    };
    p_idx.push(in_ch);
    let mut w_idx = vec![v("k"), v("rc")];
    for (dim, &s) in spatial.iter().enumerate() {
        let (sn, rn) = (names[dim], rnames[dim]);
        sp_axes.push(Axis::new(sn, p.out_size(s)));
        rd_axes.push(Axis::new(rn, p.kernel));
        p_idx.push(v(sn) * p.stride + v(rn) * p.dilation);
        w_idx.push(v(rn));
    }
    b.compute(
        "conv",
        "O",
        sp_axes,
        rd_axes,
        Expr::load("P", p_idx) * Expr::load("W", w_idx),
        Combiner::Sum,
    );
    b.finish().expect("conv graph is well-formed")
}

/// 1D sliding-window convolution (Table 1, C1D).
pub fn conv1d(p: ConvParams, length: i64) -> Graph {
    conv_nd("c1d", p, &[length])
}

/// 2D sliding-window convolution (Table 1, C2D). Also the builder behind
/// group (GRP), depthwise (DEP) and dilated (DIL) convolution via
/// [`ConvParams`].
pub fn conv2d(p: ConvParams, h: i64, w: i64) -> Graph {
    conv_nd("c2d", p, &[h, w])
}

/// 3D sliding-window convolution (Table 1, C3D).
pub fn conv3d(p: ConvParams, d: i64, h: i64, w: i64) -> Graph {
    conv_nd("c3d", p, &[d, h, w])
}

/// Group convolution (Table 1, GRP): 2D convolution separated into groups.
pub fn group_conv2d(p: ConvParams, h: i64, w: i64) -> Graph {
    assert!(p.groups > 1, "group convolution requires groups > 1");
    conv_nd("grp", p, &[h, w])
}

/// Depthwise convolution (Table 1, DEP): one filter bank per input channel.
///
/// `multiplier` output channels are produced per input channel, so the
/// output has `in_channels * multiplier` channels.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_conv2d(
    batch: i64,
    channels: i64,
    multiplier: i64,
    h: i64,
    w: i64,
    kernel: i64,
    stride: i64,
    padding: i64,
) -> Graph {
    let p = ConvParams {
        batch,
        in_channels: channels,
        out_channels: channels * multiplier,
        kernel,
        stride,
        padding,
        dilation: 1,
        groups: channels,
    };
    conv_nd("dep", p, &[h, w])
}

/// Dilated convolution (Table 1, DIL).
pub fn dilated_conv2d(p: ConvParams, h: i64, w: i64) -> Graph {
    assert!(p.dilation > 1, "dilated convolution requires dilation > 1");
    conv_nd("dil", p, &[h, w])
}

/// Core N-dimensional transposed convolution: stride-dilate node + pad node +
/// convolution with the spatially flipped, channel-transposed kernel
/// (3 compute nodes, matching Table 3's `#node` for T1D/T2D/T3D).
fn conv_transpose_nd(kind: &str, p: ConvParams, spatial: &[i64]) -> Graph {
    assert_eq!(p.groups, 1, "transposed convolution supports groups == 1");
    assert_eq!(
        p.dilation, 1,
        "transposed convolution supports dilation == 1"
    );
    assert!(p.batch >= 1 && p.kernel >= 1 && p.stride >= 1 && p.padding >= 0);
    assert!(
        p.kernel - 1 - p.padding >= 0,
        "transposed convolution requires padding <= kernel-1"
    );
    let ndim = spatial.len();
    let names = spatial_names(ndim);
    let rnames = reduce_names(ndim);

    let dims: String = spatial.iter().map(|s| format!("x{s}")).collect();
    let mut b = GraphBuilder::new(format!(
        "{kind}_b{}_c{}_k{}{}_ker{}_s{}_p{}",
        p.batch, p.in_channels, p.out_channels, dims, p.kernel, p.stride, p.padding
    ));

    let mut in_shape = vec![p.batch, p.in_channels];
    in_shape.extend_from_slice(spatial);
    b.placeholder("I", in_shape);
    // Transposed-conv weight layout: [in_channels, out_channels, kernel...].
    let mut w_shape = vec![p.in_channels, p.out_channels];
    w_shape.extend(std::iter::repeat_n(p.kernel, ndim));
    b.placeholder("W", w_shape);

    b.attr("ndim", ndim as i64)
        .attr("batch", p.batch)
        .attr("in_channels", p.in_channels)
        .attr("out_channels", p.out_channels)
        .attr("kernel", p.kernel)
        .attr("stride", p.stride)
        .attr("padding", p.padding)
        .attr("transposed", 1);
    for (dim, &s) in spatial.iter().enumerate() {
        b.attr(format!("spatial{dim}"), s);
    }

    // Node 1: stride-expansion (insert stride-1 zeros between elements).
    let expanded: Vec<i64> = spatial.iter().map(|&s| (s - 1) * p.stride + 1).collect();
    {
        let mut axes = vec![Axis::new("b", p.batch), Axis::new("c", p.in_channels)];
        let mut idx = vec![v("b"), v("c")];
        let mut cond: Option<crate::expr::Cond> = None;
        for (dim, &e) in expanded.iter().enumerate() {
            let name = names[dim];
            axes.push(Axis::new(name, e));
            idx.push(v(name) / p.stride);
            let aligned = v(name).rem(Expr::int(p.stride)).eq_(Expr::int(0));
            cond = Some(match cond {
                None => aligned,
                Some(c) => c.and(aligned),
            });
        }
        let body = match cond {
            Some(c) if p.stride > 1 => Expr::select(c, Expr::load("I", idx), Expr::float(0.0)),
            _ => Expr::load("I", idx),
        };
        b.compute("dilate", "D", axes, vec![], body, Combiner::Sum);
    }

    // Node 2: zero-padding by (kernel - 1 - padding).
    let q = p.kernel - 1 - p.padding;
    let padded = add_pad_node(
        &mut b,
        "pad",
        "D",
        "P",
        p.batch,
        p.in_channels,
        &expanded,
        q,
    );

    // Node 3: direct convolution with flipped kernel.
    let mut sp_axes = vec![Axis::new("b", p.batch), Axis::new("k", p.out_channels)];
    let mut rd_axes = vec![Axis::new("rc", p.in_channels)];
    let mut p_idx = vec![v("b"), v("rc")];
    let mut w_idx = vec![v("rc"), v("k")];
    for (dim, &pe) in padded.iter().enumerate() {
        let (sn, rn) = (names[dim], rnames[dim]);
        let out = pe - p.kernel + 1;
        assert!(out >= 1, "transposed conv output extent must be >= 1");
        sp_axes.push(Axis::new(sn, out));
        rd_axes.push(Axis::new(rn, p.kernel));
        p_idx.push(v(sn) + v(rn));
        w_idx.push((p.kernel - 1) - v(rn));
    }
    b.compute(
        "conv",
        "O",
        sp_axes,
        rd_axes,
        Expr::load("P", p_idx) * Expr::load("W", w_idx),
        Combiner::Sum,
    );
    b.finish().expect("transposed conv graph is well-formed")
}

/// Transposed 1D convolution (Table 1, T1D).
pub fn conv_transpose1d(p: ConvParams, length: i64) -> Graph {
    conv_transpose_nd("t1d", p, &[length])
}

/// Transposed 2D convolution (Table 1, T2D).
pub fn conv_transpose2d(p: ConvParams, h: i64, w: i64) -> Graph {
    conv_transpose_nd("t2d", p, &[h, w])
}

/// Transposed 3D convolution (Table 1, T3D).
pub fn conv_transpose3d(p: ConvParams, d: i64, h: i64, w: i64) -> Graph {
    conv_transpose_nd("t3d", p, &[d, h, w])
}

/// Block-circulant matrix multiply (§6.4, BCM).
///
/// The weight matrix is partitioned into `pblocks × qblocks` blocks of size
/// `block × block`, each block circulant and represented by a single
/// `block`-vector:
///
/// ```text
/// O[b, p, r] = Σ_{q, s} Wc[p, q, (r - s + block) mod block] · X[b, q, s]
/// ```
///
/// # Panics
///
/// Panics if any dimension is < 1.
pub fn bcm(batch: i64, pblocks: i64, qblocks: i64, block: i64) -> Graph {
    assert!(batch >= 1 && pblocks >= 1 && qblocks >= 1 && block >= 1);
    let mut b = GraphBuilder::new(format!("bcm_b{batch}_p{pblocks}_q{qblocks}_k{block}"));
    b.placeholder("X", vec![batch, qblocks, block]);
    b.placeholder("Wc", vec![pblocks, qblocks, block]);
    b.compute(
        "bcm",
        "O",
        vec![
            Axis::new("b", batch),
            Axis::new("p", pblocks),
            Axis::new("r", block),
        ],
        vec![Axis::new("q", qblocks), Axis::new("s", block)],
        Expr::load(
            "Wc",
            vec![
                v("p"),
                v("q"),
                (v("r") - v("s") + block).rem(Expr::int(block)),
            ],
        ) * Expr::load("X", vec![v("b"), v("q"), v("s")]),
        Combiner::Sum,
    );
    b.finish().expect("bcm graph is well-formed")
}

/// Shift operation (§6.4, SHO): the zero-FLOP, zero-parameter alternative to
/// spatial convolution from Shift-Net.
///
/// Each channel is shifted by one of the 9 offsets in `{-1,0,1}²`, selected
/// by `channel mod 9`:
///
/// ```text
/// O[b, c, i, j] = Ipad[b, c, i + (c mod 3), j + ((c / 3) mod 3)]
/// ```
///
/// # Panics
///
/// Panics if any dimension is < 1.
pub fn shift2d(batch: i64, channels: i64, h: i64, w: i64) -> Graph {
    assert!(batch >= 1 && channels >= 1 && h >= 1 && w >= 1);
    let mut b = GraphBuilder::new(format!("sho_b{batch}_c{channels}_h{h}_w{w}"));
    b.placeholder("I", vec![batch, channels, h, w]);
    add_pad_node(&mut b, "pad", "I", "P", batch, channels, &[h, w], 1);
    b.compute(
        "shift",
        "O",
        vec![
            Axis::new("b", batch),
            Axis::new("c", channels),
            Axis::new("i", h),
            Axis::new("j", w),
        ],
        vec![],
        Expr::load(
            "P",
            vec![
                v("b"),
                v("c"),
                v("i") + v("c").rem(Expr::int(3)),
                v("j") + (v("c") / 3).rem(Expr::int(3)),
            ],
        ),
        Combiner::Sum,
    );
    b.finish().expect("shift graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_shapes_and_nodes() {
        let p = ConvParams::same(1, 64, 192, 3);
        let g = conv2d(p, 112, 112);
        assert_eq!(g.output().shape, vec![1, 192, 112, 112]);
        assert_eq!(g.num_compute_nodes(), 2); // pad + conv (Table 3: C2D #node 2)
                                              // FLOPs: 2 * b*k*oh*ow * rc*kh*kw (pad node contributes none).
        assert_eq!(
            g.flops(),
            2 * (192 * 112 * 112) as u64 * (64 * 3 * 3) as u64
        );
    }

    #[test]
    fn conv2d_strided_output_shape() {
        let p = ConvParams::same(8, 3, 64, 7).with_stride(2); // YOLO C1
        let g = conv2d(p, 448, 448);
        assert_eq!(g.output().shape, vec![8, 64, 224, 224]);
    }

    #[test]
    fn conv1d_and_conv3d_node_counts() {
        let p = ConvParams::same(1, 32, 64, 3);
        assert_eq!(conv1d(p, 128).num_compute_nodes(), 2);
        assert_eq!(conv3d(p, 8, 28, 28).num_compute_nodes(), 2);
    }

    #[test]
    fn transposed_conv_has_three_nodes() {
        let p = ConvParams {
            batch: 1,
            in_channels: 16,
            out_channels: 8,
            kernel: 4,
            stride: 2,
            padding: 1,
            dilation: 1,
            groups: 1,
        };
        let g = conv_transpose2d(p, 14, 14);
        assert_eq!(g.num_compute_nodes(), 3); // dilate + pad + conv
                                              // PyTorch: out = (in-1)*stride - 2*pad + kernel = 13*2 - 2 + 4 = 28.
        assert_eq!(g.output().shape, vec![1, 8, 28, 28]);
    }

    #[test]
    fn group_conv_channel_arithmetic() {
        let p = ConvParams::same(1, 64, 128, 3).with_groups(4);
        let g = group_conv2d(p, 28, 28);
        // Weight shape: [out_channels, in_channels/groups, k, k].
        assert_eq!(g.tensor("W").unwrap().shape, vec![128, 16, 3, 3]);
        assert_eq!(g.flops(), 2 * (128 * 28 * 28) as u64 * (16 * 3 * 3) as u64);
    }

    #[test]
    fn depthwise_conv_shapes() {
        let g = depthwise_conv2d(1, 32, 2, 56, 56, 3, 1, 1);
        assert_eq!(g.output().shape, vec![1, 64, 56, 56]);
        assert_eq!(g.tensor("W").unwrap().shape, vec![64, 1, 3, 3]);
    }

    #[test]
    fn dilated_conv_output_shape() {
        let p = ConvParams {
            batch: 1,
            in_channels: 64,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 2,
            dilation: 2,
            groups: 1,
        };
        let g = dilated_conv2d(p, 56, 56);
        assert_eq!(g.output().shape, vec![1, 64, 56, 56]);
    }

    #[test]
    fn matmul_family_single_node() {
        assert_eq!(gemv(1024, 1024).num_compute_nodes(), 1);
        assert_eq!(gemm(512, 512, 512).num_compute_nodes(), 1);
        assert_eq!(bilinear(64, 64, 128, 128).num_compute_nodes(), 1);
    }

    #[test]
    fn gemv_flops() {
        assert_eq!(gemv(256, 512).flops(), 2 * 256 * 512);
    }

    #[test]
    fn bilinear_flops_counts_two_muls() {
        // Body has 2 multiplies + 1 accumulate per reduce point.
        let g = bilinear(8, 8, 4, 4);
        assert_eq!(g.flops(), 3 * 8 * 8 * 4 * 4);
    }

    #[test]
    fn bcm_structure() {
        let g = bcm(1, 16, 16, 64);
        assert_eq!(g.output().shape, vec![1, 16, 64]);
        assert_eq!(g.num_compute_nodes(), 1);
        assert_eq!(g.flops(), 2 * (16 * 64) as u64 * (16 * 64) as u64);
    }

    #[test]
    fn shift_is_zero_flop() {
        let g = shift2d(1, 64, 28, 28);
        assert_eq!(g.flops(), 0);
        assert_eq!(g.output().shape, vec![1, 64, 28, 28]);
        assert_eq!(g.num_compute_nodes(), 2); // pad + shift
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn group_conv_rejects_groups_one() {
        group_conv2d(ConvParams::same(1, 8, 8, 3), 8, 8);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn conv_rejects_indivisible_groups() {
        conv2d(ConvParams::same(1, 10, 8, 3).with_groups(4), 8, 8);
    }

    #[test]
    fn out_size_formula_matches_reference() {
        let p = ConvParams::same(1, 1, 1, 3).with_stride(2);
        // (14 + 2*1 - 1*(3-1) - 1)/2 + 1 = 7 (YOLO C14: 14x14 -> 7x7).
        assert_eq!(p.out_size(14), 7);
    }
}

/// Element-wise epilogues that fuse into a producer at writeback (the
/// sub-graph fusion of §6.6: DNN layers are conv + bias + activation,
/// fused into one operator before optimization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Epilogue {
    /// `max(x, 0)`.
    Relu,
    /// `max(x, 0) + alpha * min(x, 0)` (YOLO uses `alpha = 0.1`).
    LeakyRelu(f64),
    /// Per-channel bias add followed by ReLU; `channel_axis` names which
    /// output dimension indexes the bias vector.
    BiasRelu {
        /// Output dimension holding channels.
        channel_axis: usize,
    },
}

/// Appends an element-wise epilogue node to a graph, producing a new graph
/// whose output is the epilogue result. The original output becomes an
/// intermediate; lowering fuses the epilogue at writeback.
///
/// # Panics
///
/// Panics if `BiasRelu`'s channel axis is out of range.
pub fn fuse_epilogue(mut graph: Graph, epilogue: Epilogue) -> Graph {
    use crate::graph::{Op, TensorDecl, TensorKind};

    let root = graph.root_op().clone();
    let src = root.output.clone();
    // Demote the old output.
    for t in &mut graph.tensors {
        if t.name == src {
            t.kind = TensorKind::Intermediate;
        }
    }
    let axes: Vec<Axis> = root.spatial.clone();
    let idx: Vec<Expr> = axes.iter().map(|a| v(&a.name)).collect();
    let x = Expr::load(&src, idx.clone());
    let (body, extra_inputs) = match epilogue {
        Epilogue::Relu => (x.max(Expr::float(0.0)), vec![]),
        Epilogue::LeakyRelu(alpha) => {
            let pos = x.clone().max(Expr::float(0.0));
            let neg = x.min(Expr::float(0.0)) * Expr::float(alpha);
            (pos + neg, vec![])
        }
        Epilogue::BiasRelu { channel_axis } => {
            assert!(channel_axis < axes.len(), "channel axis out of range");
            let bias_name = "Bias".to_string();
            let bias_shape = vec![axes[channel_axis].extent];
            let biased = x + Expr::load(&bias_name, vec![v(&axes[channel_axis].name)]);
            (
                biased.max(Expr::float(0.0)),
                vec![TensorDecl {
                    name: bias_name,
                    shape: bias_shape,
                    kind: TensorKind::Input,
                }],
            )
        }
    };
    for t in extra_inputs {
        graph.ops.push(Op::Placeholder {
            tensor: t.name.clone(),
        });
        graph.tensors.push(t);
    }
    let out_name = format!("{src}_act");
    graph.tensors.push(TensorDecl {
        name: out_name.clone(),
        shape: axes.iter().map(|a| a.extent).collect(),
        kind: TensorKind::Output,
    });
    graph.ops.push(Op::Compute(crate::graph::ComputeOp {
        name: "epilogue".into(),
        output: out_name,
        spatial: axes,
        reduce: vec![],
        body,
        combiner: Combiner::Sum,
    }));
    graph.name = format!("{}_fused", graph.name);
    graph
}

#[cfg(test)]
mod epilogue_tests {
    use super::*;

    #[test]
    fn relu_fusion_extends_graph() {
        let g = fuse_epilogue(conv2d(ConvParams::same(1, 4, 8, 3), 6, 6), Epilogue::Relu);
        assert_eq!(g.num_compute_nodes(), 3); // pad + conv + epilogue
        assert_eq!(g.output().name, "O_act");
        assert_eq!(g.anchor_op().name, "conv");
        assert_eq!(g.epilogue_chain().len(), 1);
    }

    #[test]
    fn bias_relu_adds_input() {
        let g = fuse_epilogue(
            conv2d(ConvParams::same(1, 4, 8, 3), 6, 6),
            Epilogue::BiasRelu { channel_axis: 1 },
        );
        assert!(g.inputs().any(|t| t.name == "Bias"));
        assert_eq!(g.tensor("Bias").unwrap().shape, vec![8]);
    }

    #[test]
    fn anchor_of_unfused_graph_is_root() {
        let g = conv2d(ConvParams::same(1, 4, 8, 3), 6, 6);
        assert_eq!(g.anchor_op().name, g.root_op().name);
        assert!(g.epilogue_chain().is_empty());
    }

    #[test]
    fn shift_anchor_falls_back_to_root() {
        let g = shift2d(1, 9, 4, 4);
        assert_eq!(g.anchor_op().name, "shift");
    }

    #[test]
    fn leaky_relu_counts_flops() {
        let g = fuse_epilogue(gemm(4, 4, 4), Epilogue::LeakyRelu(0.1));
        // gemm 2*n*m*k + epilogue (max + mul + min + add = 4 per point).
        assert_eq!(g.flops(), 2 * 64 + 4 * 16);
    }
}
