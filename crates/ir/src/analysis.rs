//! Static analysis of tensor computations (§4.1).
//!
//! The front-end extracts two categories of information from a mini-graph:
//!
//! * **Statistical** (per node): number of spatial loops `#sl`, number of
//!   reduce loops `#rl`, trip counts `stc`/`rtc`, and the loop `order`.
//! * **Structural** (per graph): number of nodes `#node`, inputs per node
//!   `#in`, outputs per node `#out`, and consumers per node `#cs`.
//!
//! The schedule-space generator consumes exactly this information.

use std::fmt;

use crate::graph::{ComputeOp, Graph};

/// Statistical information of one compute node (Fig. 3c, left column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStat {
    /// Node name.
    pub node: String,
    /// Number of spatial loops (`#sl`).
    pub num_spatial: usize,
    /// Number of reduce loops (`#rl`).
    pub num_reduce: usize,
    /// Trip counts of spatial loops (`stc`).
    pub spatial_trip_counts: Vec<i64>,
    /// Trip counts of reduce loops (`rtc`).
    pub reduce_trip_counts: Vec<i64>,
    /// Loop order (spatial loops then reduce loops, outer to inner).
    pub order: Vec<String>,
}

impl NodeStat {
    /// Extracts the statistics of a single compute op.
    pub fn of(op: &ComputeOp) -> NodeStat {
        NodeStat {
            node: op.name.clone(),
            num_spatial: op.spatial.len(),
            num_reduce: op.reduce.len(),
            spatial_trip_counts: op.spatial.iter().map(|a| a.extent).collect(),
            reduce_trip_counts: op.reduce.iter().map(|a| a.extent).collect(),
            order: op
                .spatial
                .iter()
                .chain(op.reduce.iter())
                .map(|a| a.name.clone())
                .collect(),
        }
    }
}

impl fmt::Display for NodeStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: #sl {} #rl {} stc {:?} rtc {:?} order {:?}",
            self.node,
            self.num_spatial,
            self.num_reduce,
            self.spatial_trip_counts,
            self.reduce_trip_counts,
            self.order
        )
    }
}

/// Structural information of one compute node (Fig. 3c, right column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStruct {
    /// Node name.
    pub node: String,
    /// Number of distinct input tensors read (`#in`).
    pub num_inputs: usize,
    /// Number of output tensors produced (`#out`, always 1 in this IR).
    pub num_outputs: usize,
    /// Number of compute nodes consuming this node's output (`#cs`).
    pub num_consumers: usize,
}

/// Full analysis result for a mini-graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphAnalysis {
    /// Graph name.
    pub graph: String,
    /// Number of compute nodes (Table 3's `#node`).
    pub num_compute_nodes: usize,
    /// Number of nodes including placeholders (Fig. 3c's `#node`).
    pub num_nodes_total: usize,
    /// Per-node statistics, in post-order.
    pub stats: Vec<NodeStat>,
    /// Per-node structure, in post-order.
    pub structure: Vec<NodeStruct>,
    /// Total spatial loops across all compute nodes (how Table 3 reports
    /// `#sl` for multi-node operators, e.g. C2D = pad 4 + conv 4 = 8).
    pub total_spatial: usize,
    /// Reduce loops of the root (arithmetic) node — Table 3's `#rl`.
    pub root_reduce: usize,
    /// Total floating-point operations.
    pub flops: u64,
}

/// Analyzes a mini-graph, producing everything the schedule-space generator
/// needs (§4.1).
///
/// # Examples
///
/// ```
/// let g = flextensor_ir::ops::gemm(1024, 1024, 1024);
/// let a = flextensor_ir::analysis::analyze(&g);
/// assert_eq!(a.stats[0].num_spatial, 2);
/// assert_eq!(a.stats[0].num_reduce, 1);
/// assert_eq!(a.flops, 2 * 1024 * 1024 * 1024);
/// ```
pub fn analyze(g: &Graph) -> GraphAnalysis {
    let consumers = g.consumers();
    let mut stats = Vec::new();
    let mut structure = Vec::new();
    for op in g.compute_ops() {
        stats.push(NodeStat::of(op));
        structure.push(NodeStruct {
            node: op.name.clone(),
            num_inputs: op.input_tensors().len(),
            num_outputs: 1,
            num_consumers: consumers.get(&op.output).map_or(0, Vec::len),
        });
    }
    GraphAnalysis {
        graph: g.name.clone(),
        num_compute_nodes: g.num_compute_nodes(),
        num_nodes_total: g.num_nodes_total(),
        total_spatial: stats.iter().map(|s| s.num_spatial).sum(),
        root_reduce: stats.last().map_or(0, |s| s.num_reduce),
        flops: g.flops(),
        stats,
        structure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{self, ConvParams};

    #[test]
    fn gemm_analysis_matches_fig3() {
        let g = ops::gemm(1024, 1024, 1024);
        let a = analyze(&g);
        let s = &a.stats[0];
        assert_eq!(s.num_spatial, 2);
        assert_eq!(s.num_reduce, 1);
        assert_eq!(s.spatial_trip_counts, vec![1024, 1024]);
        assert_eq!(s.reduce_trip_counts, vec![1024]);
        assert_eq!(s.order, vec!["i", "j", "k"]);
        // Fig. 3c counts placeholders: #node 3, #in 2, #out 1, #cs 0.
        assert_eq!(a.num_nodes_total, 3);
        assert_eq!(a.structure[0].num_inputs, 2);
        assert_eq!(a.structure[0].num_outputs, 1);
        assert_eq!(a.structure[0].num_consumers, 0);
    }

    #[test]
    fn conv2d_totals_match_table3() {
        // Table 3: C2D #sl/#rl = 8/3, #node = 2.
        let g = ops::conv2d(ConvParams::same(1, 64, 64, 3), 28, 28);
        let a = analyze(&g);
        assert_eq!(a.total_spatial, 8);
        assert_eq!(a.root_reduce, 3);
        assert_eq!(a.num_compute_nodes, 2);
    }

    #[test]
    fn t2d_totals_match_table3() {
        // Table 3: T2D #sl/#rl = 12/3, #node = 3.
        let p = ConvParams {
            batch: 1,
            in_channels: 32,
            out_channels: 16,
            kernel: 4,
            stride: 2,
            padding: 1,
            dilation: 1,
            groups: 1,
        };
        let g = ops::conv_transpose2d(p, 14, 14);
        let a = analyze(&g);
        assert_eq!(a.total_spatial, 12);
        assert_eq!(a.root_reduce, 3);
        assert_eq!(a.num_compute_nodes, 3);
    }

    #[test]
    fn c1d_and_c3d_totals() {
        // Table 3: C1D 6/2, C3D 10/4.
        let p = ConvParams::same(1, 16, 16, 3);
        let a1 = analyze(&ops::conv1d(p, 64));
        assert_eq!((a1.total_spatial, a1.root_reduce), (6, 2));
        let a3 = analyze(&ops::conv3d(p, 8, 14, 14));
        assert_eq!((a3.total_spatial, a3.root_reduce), (10, 4));
    }

    #[test]
    fn pad_node_has_one_consumer() {
        let g = ops::conv2d(ConvParams::same(1, 8, 8, 3), 14, 14);
        let a = analyze(&g);
        let pad = a.structure.iter().find(|s| s.node == "pad").unwrap();
        assert_eq!(pad.num_consumers, 1);
    }
}
