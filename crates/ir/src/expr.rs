//! Scalar expression AST used in compute bodies and tensor index expressions.
//!
//! Expressions are untyped at construction and evaluated dynamically by the
//! interpreter to either an integer (for index arithmetic) or a float (for
//! tensor values). This mirrors how TVM's `PrimExpr` is used by FlexTensor's
//! front-end: the auto-scheduler only needs to *inspect* expressions (which
//! tensors are loaded with which index patterns), not to type-check them.

use std::fmt;
use std::ops;

/// A comparison operator appearing inside [`Expr::Select`] conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on integers, `/` on floats).
    Div,
    /// Euclidean remainder (only meaningful on integers).
    Mod,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// A boolean condition over scalar expressions.
///
/// Conditions appear in [`Expr::Select`], which is how padding and boundary
/// handling are expressed (e.g. the zero-padding node of a convolution).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Comparison of two scalar expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and.
    And(Box<Cond>, Box<Cond>),
    /// Logical or.
    Or(Box<Cond>, Box<Cond>),
    /// Logical not.
    Not(Box<Cond>),
}

impl Cond {
    /// Conjunction of `self` and `other`.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// Disjunction of `self` and `other`.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Box::new(self), Box::new(other))
    }

    /// Negation of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Cond {
        Cond::Not(Box::new(self))
    }

    /// Collects the names of all variables referenced by this condition.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Cond::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Cond::Not(a) => a.collect_vars(out),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Cond::And(a, b) => write!(f, "({a} && {b})"),
            Cond::Or(a, b) => write!(f, "({a} || {b})"),
            Cond::Not(a) => write!(f, "!{a}"),
        }
    }
}

/// A scalar expression.
///
/// The same AST is used for tensor *values* (float arithmetic over loads) and
/// tensor *indices* (integer arithmetic over loop variables). The
/// interpreter in `flextensor-interp` evaluates either flavor.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating-point constant.
    FConst(f64),
    /// Integer constant.
    IConst(i64),
    /// Reference to a loop variable (a spatial or reduce axis) by name.
    Var(String),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `if cond then a else b` — used for padding / boundary conditions.
    Select(Box<Cond>, Box<Expr>, Box<Expr>),
    /// Read `tensor[indices...]`.
    Load {
        /// Name of the tensor being read.
        tensor: String,
        /// One index expression per tensor dimension.
        indices: Vec<Expr>,
    },
}

impl Expr {
    /// Integer constant helper.
    pub fn int(v: i64) -> Expr {
        Expr::IConst(v)
    }

    /// Floating-point constant helper.
    pub fn float(v: f64) -> Expr {
        Expr::FConst(v)
    }

    /// Loop-variable reference helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Tensor load helper.
    pub fn load(tensor: impl Into<String>, indices: Vec<Expr>) -> Expr {
        Expr::Load {
            tensor: tensor.into(),
            indices,
        }
    }

    /// `min(self, other)`.
    pub fn min(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(other))
    }

    /// `max(self, other)`.
    pub fn max(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(other))
    }

    /// Euclidean remainder `self % other`.
    #[allow(clippy::should_implement_trait)] // named for the math, not the operator
    pub fn rem(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Mod, Box::new(self), Box::new(other))
    }

    /// Comparison producing a [`Cond`].
    pub fn cmp(self, op: CmpOp, other: Expr) -> Cond {
        Cond::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Cond {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Cond {
        self.cmp(CmpOp::Ge, other)
    }

    /// `self == other`.
    pub fn eq_(self, other: Expr) -> Cond {
        self.cmp(CmpOp::Eq, other)
    }

    /// `if cond { self } else { other }`.
    pub fn select(cond: Cond, then: Expr, otherwise: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// Collects the names of all variables referenced by this expression
    /// (including those inside select conditions and load indices).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::FConst(_) | Expr::IConst(_) => {}
            Expr::Var(name) => {
                if !out.iter().any(|v| v == name) {
                    out.push(name.clone());
                }
            }
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Select(c, a, b) => {
                c.collect_vars(out);
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Load { indices, .. } => {
                for ix in indices {
                    ix.collect_vars(out);
                }
            }
        }
    }

    /// Collects the names of all tensors loaded by this expression, in first
    /// occurrence order, without duplicates.
    pub fn collect_loads(&self, out: &mut Vec<String>) {
        match self {
            Expr::FConst(_) | Expr::IConst(_) | Expr::Var(_) => {}
            Expr::Bin(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Select(c, a, b) => {
                // Conditions cannot load tensors in this IR, but walk the
                // sub-conditions' expressions anyway for future-proofing.
                fn walk_cond(c: &Cond, out: &mut Vec<String>) {
                    match c {
                        Cond::Cmp(_, a, b) => {
                            a.collect_loads(out);
                            b.collect_loads(out);
                        }
                        Cond::And(a, b) | Cond::Or(a, b) => {
                            walk_cond(a, out);
                            walk_cond(b, out);
                        }
                        Cond::Not(a) => walk_cond(a, out),
                    }
                }
                walk_cond(c, out);
                a.collect_loads(out);
                b.collect_loads(out);
            }
            Expr::Load { tensor, indices } => {
                if !out.iter().any(|t| t == tensor) {
                    out.push(tensor.clone());
                }
                for ix in indices {
                    ix.collect_loads(out);
                }
            }
        }
    }

    /// Counts the floating-point arithmetic operations performed per
    /// evaluation of this expression (adds, subs, muls, divs, mins, maxes).
    ///
    /// Index arithmetic inside `Load` is *not* counted: it is address
    /// computation, not tensor arithmetic. `Select` counts the maximum of
    /// its branches (a data-dependent bound).
    pub fn count_flops(&self) -> u64 {
        match self {
            Expr::FConst(_) | Expr::IConst(_) | Expr::Var(_) => 0,
            Expr::Bin(_, a, b) => 1 + a.count_flops() + b.count_flops(),
            Expr::Select(_, a, b) => a.count_flops().max(b.count_flops()),
            Expr::Load { .. } => 0,
        }
    }

    /// Substitutes every occurrence of variable `name` with `value`.
    pub fn substitute(&self, name: &str, value: &Expr) -> Expr {
        match self {
            Expr::FConst(_) | Expr::IConst(_) => self.clone(),
            Expr::Var(n) => {
                if n == name {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.substitute(name, value)),
                Box::new(b.substitute(name, value)),
            ),
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(substitute_cond(c, name, value)),
                Box::new(a.substitute(name, value)),
                Box::new(b.substitute(name, value)),
            ),
            Expr::Load { tensor, indices } => Expr::Load {
                tensor: tensor.clone(),
                indices: indices
                    .iter()
                    .map(|ix| ix.substitute(name, value))
                    .collect(),
            },
        }
    }
}

fn substitute_cond(c: &Cond, name: &str, value: &Expr) -> Cond {
    match c {
        Cond::Cmp(op, a, b) => Cond::Cmp(
            *op,
            Box::new(a.substitute(name, value)),
            Box::new(b.substitute(name, value)),
        ),
        Cond::And(a, b) => Cond::And(
            Box::new(substitute_cond(a, name, value)),
            Box::new(substitute_cond(b, name, value)),
        ),
        Cond::Or(a, b) => Cond::Or(
            Box::new(substitute_cond(a, name, value)),
            Box::new(substitute_cond(b, name, value)),
        ),
        Cond::Not(a) => Cond::Not(Box::new(substitute_cond(a, name, value))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::FConst(v) => write!(f, "{v}"),
            Expr::IConst(v) => write!(f, "{v}"),
            Expr::Var(n) => f.write_str(n),
            Expr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => write!(f, "{op}({a}, {b})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Select(c, a, b) => write!(f, "select({c}, {a}, {b})"),
            Expr::Load { tensor, indices } => {
                write!(f, "{tensor}[")?;
                for (i, ix) in indices.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{ix}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::IConst(v)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::FConst(v)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs))
            }
        }
        impl ops::$trait<i64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(Expr::IConst(rhs)))
            }
        }
        impl ops::$trait<Expr> for i64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(Expr::IConst(self)), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn operator_overloads_build_expected_tree() {
        let e = v("i") * 2 + v("j");
        match e {
            Expr::Bin(BinOp::Add, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Bin(BinOp::Mul, _, _)));
                assert_eq!(*rhs, Expr::Var("j".into()));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn collect_vars_dedups_and_descends_into_loads() {
        let e = Expr::load("A", vec![v("i"), v("k") + v("i")]) * Expr::load("B", vec![v("k")]);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec!["i".to_string(), "k".to_string()]);
    }

    #[test]
    fn collect_loads_orders_by_first_occurrence() {
        let e = Expr::load("A", vec![v("i")]) * Expr::load("B", vec![v("j")])
            + Expr::load("A", vec![v("j")]);
        let mut loads = Vec::new();
        e.collect_loads(&mut loads);
        assert_eq!(loads, vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn count_flops_handles_mul_add() {
        // A[i] * B[i] + C[i]: one mul, one add.
        let e = Expr::load("A", vec![v("i")]) * Expr::load("B", vec![v("i")])
            + Expr::load("C", vec![v("i")]);
        assert_eq!(e.count_flops(), 2);
    }

    #[test]
    fn count_flops_ignores_index_arithmetic() {
        let e = Expr::load("A", vec![v("i") * 2 + 1]);
        assert_eq!(e.count_flops(), 0);
    }

    #[test]
    fn substitute_replaces_everywhere() {
        let e = Expr::load("A", vec![v("i") + v("rx")]) * v("rx");
        let s = e.substitute("rx", &Expr::int(3));
        let mut vars = Vec::new();
        s.collect_vars(&mut vars);
        assert_eq!(vars, vec!["i".to_string()]);
    }

    #[test]
    fn select_display_is_readable() {
        let e = Expr::select(
            v("i").lt(Expr::int(4)),
            Expr::load("A", vec![v("i")]),
            Expr::float(0.0),
        );
        assert_eq!(format!("{e}"), "select((i < 4), A[i], 0)");
    }
}
