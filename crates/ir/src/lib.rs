//! # flextensor-ir
//!
//! Tensor-expression IR, operator library, and front-end static analysis for
//! the FlexTensor reproduction (Zheng et al., ASPLOS 2020).
//!
//! A tensor computation is described as a [*mini-graph*](graph::Graph) of
//! nested-loop [compute nodes](graph::ComputeOp) connected by tensors —
//! exactly the structure FlexTensor's front-end analyzes (§4.1 of the
//! paper). This crate provides:
//!
//! * [`expr`] — the scalar expression AST used for compute bodies and index
//!   arithmetic (loads, arithmetic, `select` for padding).
//! * [`graph`] — axes, tensors, compute ops, the validating
//!   [`GraphBuilder`](graph::GraphBuilder), and the mini-graph itself.
//! * [`ops`] — constructors for every operator in the paper's evaluation
//!   (Table 1 / Table 3 / §6.4): GEMV, GEMM, Bilinear, direct and transposed
//!   1D/2D/3D convolution, group / depthwise / dilated convolution, BCM and
//!   the shift operation.
//! * [`analysis`] — the statistical (`#sl`, `#rl`, trip counts, order) and
//!   structural (`#node`, `#in`, `#out`, `#cs`) information of §4.1.
//! * [`yolo`] — the YOLO-v1 (Table 4) and OverFeat layer configurations.
//! * [`suite`] — the Table 3 benchmark suite used by every experiment.
//!
//! # Examples
//!
//! ```
//! use flextensor_ir::{ops, analysis};
//!
//! // Describe a 2D convolution purely mathematically...
//! let g = ops::conv2d(ops::ConvParams::same(1, 64, 192, 3), 112, 112);
//! // ...and let the front-end analyze it.
//! let info = analysis::analyze(&g);
//! assert_eq!(info.num_compute_nodes, 2);       // padding node + conv node
//! assert_eq!(info.root_reduce, 3);             // rc, rx, ry
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod expr;
pub mod graph;
pub mod ops;
pub mod simplify;
pub mod suite;
pub mod yolo;

pub use analysis::{analyze, GraphAnalysis};
pub use expr::{BinOp, CmpOp, Cond, Expr};
pub use graph::{
    Axis, Combiner, ComputeOp, Graph, GraphBuilder, GraphError, Op, TensorDecl, TensorKind,
};
pub use ops::ConvParams;
pub use simplify::simplify;
pub use suite::OperatorKind;
