//! The *mini-graph* representation of a tensor computation (§4.1).
//!
//! A tensor computation is a small DAG where nodes are nested-loop compute
//! operations (or placeholders for externally-provided inputs) and edges are
//! tensors. FlexTensor's front-end analyzes this graph to produce the
//! schedule space; its back-end schedules the graph bottom-up (Algorithm 1).

use std::collections::HashMap;
use std::fmt;

use crate::expr::Expr;

/// A loop axis: a name and a trip count (extent).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Axis {
    /// Loop variable name, unique within its compute op.
    pub name: String,
    /// Trip count of the loop; always ≥ 1.
    pub extent: i64,
}

impl Axis {
    /// Creates a new axis.
    ///
    /// # Panics
    ///
    /// Panics if `extent < 1`.
    pub fn new(name: impl Into<String>, extent: i64) -> Axis {
        assert!(extent >= 1, "axis extent must be >= 1, got {extent}");
        Axis {
            name: name.into(),
            extent,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.extent)
    }
}

/// How a tensor participates in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Externally supplied input (produced by a placeholder node).
    Input,
    /// Produced by one compute op and consumed by another.
    Intermediate,
    /// The graph output.
    Output,
}

/// A tensor declaration: name, shape, and role.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorDecl {
    /// Tensor name, unique within the graph.
    pub name: String,
    /// Extent of each dimension.
    pub shape: Vec<i64>,
    /// Role in the graph.
    pub kind: TensorKind,
}

impl TensorDecl {
    /// Total number of scalar elements.
    pub fn num_elements(&self) -> i64 {
        self.shape.iter().product()
    }

    /// Size in bytes assuming `float32` storage (the paper's precision).
    pub fn bytes(&self) -> i64 {
        self.num_elements() * 4
    }
}

/// How reduce-axis contributions combine into the output value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Combiner {
    /// Sum reduction (the `◦` of Table 1).
    #[default]
    Sum,
    /// Max reduction (pooling-style ops).
    Max,
}

/// A compute node: a perfectly nested loop producing one output tensor.
///
/// Semantics: for every point of the `spatial` iteration domain,
///
/// ```text
/// out[spatial...] = combine over reduce... of body(spatial..., reduce...)
/// ```
///
/// With an empty `reduce`, the output is simply `body` evaluated at each
/// spatial point.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeOp {
    /// Node name, unique within the graph.
    pub name: String,
    /// Name of the produced tensor.
    pub output: String,
    /// Spatial (data-parallel) loops; one per output dimension, in order.
    pub spatial: Vec<Axis>,
    /// Reduce (accumulation) loops.
    pub reduce: Vec<Axis>,
    /// Value contributed at each iteration point.
    pub body: Expr,
    /// How reduce contributions combine.
    pub combiner: Combiner,
}

impl ComputeOp {
    /// Names of tensors read by the body, in first-occurrence order.
    pub fn input_tensors(&self) -> Vec<String> {
        let mut loads = Vec::new();
        self.body.collect_loads(&mut loads);
        loads
    }

    /// Product of spatial extents (number of output points).
    pub fn spatial_size(&self) -> i64 {
        self.spatial.iter().map(|a| a.extent).product()
    }

    /// Product of reduce extents (iterations per output point).
    pub fn reduce_size(&self) -> i64 {
        self.reduce.iter().map(|a| a.extent).product()
    }

    /// Floating-point operations performed by this node.
    ///
    /// Counts the arithmetic in the body once per iteration point, plus one
    /// accumulate per reduce iteration when a reduction is present.
    pub fn flops(&self) -> u64 {
        let points = (self.spatial_size() * self.reduce_size()) as u64;
        let body_flops = self.body.count_flops();
        let acc = if self.reduce.is_empty() { 0 } else { 1 };
        points * (body_flops + acc)
    }

    /// Looks up an axis (spatial or reduce) by name.
    pub fn axis(&self, name: &str) -> Option<&Axis> {
        self.spatial
            .iter()
            .chain(self.reduce.iter())
            .find(|a| a.name == name)
    }
}

/// A node in the mini-graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Externally supplied input tensor.
    Placeholder {
        /// Name of the input tensor this node produces.
        tensor: String,
    },
    /// A nested-loop computation.
    Compute(ComputeOp),
}

impl Op {
    /// Name of the tensor this node produces.
    pub fn output_tensor(&self) -> &str {
        match self {
            Op::Placeholder { tensor } => tensor,
            Op::Compute(c) => &c.output,
        }
    }

    /// Node name (placeholders are named after their tensor).
    pub fn name(&self) -> &str {
        match self {
            Op::Placeholder { tensor } => tensor,
            Op::Compute(c) => &c.name,
        }
    }

    /// Returns the compute op if this node is one.
    pub fn as_compute(&self) -> Option<&ComputeOp> {
        match self {
            Op::Placeholder { .. } => None,
            Op::Compute(c) => Some(c),
        }
    }
}

/// A tensor computation mini-graph (§4.1).
///
/// `ops` is stored in topological order: every tensor is declared by an
/// earlier node than any node reading it. [`GraphBuilder`] enforces this.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Human-readable name of the whole computation (e.g. `"conv2d"`).
    pub name: String,
    /// All tensors, indexed by [`Graph::tensor`].
    pub tensors: Vec<TensorDecl>,
    /// All nodes, in topological order.
    pub ops: Vec<Op>,
    /// Operator attributes recorded by the constructor (e.g. `kernel`,
    /// `stride`, `groups`) — metadata baseline libraries use for
    /// algorithm selection, looked up via [`Graph::attr`].
    pub attrs: Vec<(String, i64)>,
}

impl Graph {
    /// Looks up an operator attribute recorded at construction.
    pub fn attr(&self, key: &str) -> Option<i64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Looks up a tensor declaration by name.
    pub fn tensor(&self, name: &str) -> Option<&TensorDecl> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// The output tensor of the graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no output tensor (never true for graphs built
    /// via [`GraphBuilder::finish`]).
    pub fn output(&self) -> &TensorDecl {
        self.tensors
            .iter()
            .find(|t| t.kind == TensorKind::Output)
            .expect("graph has an output tensor")
    }

    /// All input tensor declarations, in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = &TensorDecl> {
        self.tensors.iter().filter(|t| t.kind == TensorKind::Input)
    }

    /// All compute nodes, in topological order.
    pub fn compute_ops(&self) -> impl Iterator<Item = &ComputeOp> {
        self.ops.iter().filter_map(Op::as_compute)
    }

    /// Number of compute nodes (the `#node` of Table 3).
    pub fn num_compute_nodes(&self) -> usize {
        self.compute_ops().count()
    }

    /// Number of nodes including placeholders (the `#node` of Fig. 3c).
    pub fn num_nodes_total(&self) -> usize {
        self.ops.len()
    }

    /// The final compute node (the one producing the graph output).
    ///
    /// # Panics
    ///
    /// Panics if the graph contains no compute node.
    pub fn root_op(&self) -> &ComputeOp {
        let out = self.output().name.clone();
        self.compute_ops()
            .find(|c| c.output == out)
            .expect("graph has a compute node producing the output")
    }

    /// The *anchor* node: the compute node exploration schedules.
    ///
    /// This is the last compute node with reduce axes (the arithmetic
    /// core); element-wise consumer nodes after it (bias, activation) are
    /// epilogues fused at writeback by lowering. Graphs with no reduction
    /// anywhere (e.g. the shift operator) anchor at the root.
    pub fn anchor_op(&self) -> &ComputeOp {
        self.compute_ops()
            .filter(|c| !c.reduce.is_empty())
            .last()
            .unwrap_or_else(|| self.root_op())
    }

    /// The element-wise consumer chain from the anchor's output to the
    /// graph output (empty when the anchor is the root): the nodes fused
    /// as epilogues.
    pub fn epilogue_chain(&self) -> Vec<&ComputeOp> {
        let mut chain = Vec::new();
        let mut tensor = self.anchor_op().output.clone();
        let out = self.output().name.clone();
        while tensor != out {
            let Some(next) = self
                .compute_ops()
                .find(|c| c.reduce.is_empty() && c.input_tensors().contains(&tensor))
            else {
                break;
            };
            tensor = next.output.clone();
            chain.push(next);
        }
        chain
    }

    /// Looks up a compute op by node name.
    pub fn compute_op(&self, name: &str) -> Option<&ComputeOp> {
        self.compute_ops().find(|c| c.name == name)
    }

    /// Consumers of each tensor: map tensor name → compute node names that
    /// read it (the `#cs` of §4.1).
    pub fn consumers(&self) -> HashMap<String, Vec<String>> {
        let mut map: HashMap<String, Vec<String>> = HashMap::new();
        for t in &self.tensors {
            map.insert(t.name.clone(), Vec::new());
        }
        for c in self.compute_ops() {
            for input in c.input_tensors() {
                if let Some(v) = map.get_mut(&input) {
                    v.push(c.name.clone());
                }
            }
        }
        map
    }

    /// Total floating-point operations across all compute nodes that perform
    /// actual arithmetic. Data-movement nodes (pad, dilate, shift — zero
    /// arithmetic per point) are excluded, matching how the paper reports
    /// operator FLOPs.
    pub fn flops(&self) -> u64 {
        self.compute_ops().map(ComputeOp::flops).sum()
    }

    /// Compute node names in post-order (dependencies before dependents).
    ///
    /// Because `ops` is stored topologically this is simply declaration
    /// order, but the method exists to mirror Algorithm 1's
    /// `post_order_traverse`.
    pub fn post_order(&self) -> Vec<String> {
        self.compute_ops().map(|c| c.name.clone()).collect()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph {} {{", self.name)?;
        for op in &self.ops {
            match op {
                Op::Placeholder { tensor } => {
                    let t = self.tensor(tensor).expect("declared tensor");
                    writeln!(f, "  placeholder {}{:?}", tensor, t.shape)?;
                }
                Op::Compute(c) => {
                    let sp: Vec<String> = c.spatial.iter().map(|a| a.to_string()).collect();
                    let rd: Vec<String> = c.reduce.iter().map(|a| a.to_string()).collect();
                    writeln!(
                        f,
                        "  {}: {}[{}] = {} over [{}]",
                        c.name,
                        c.output,
                        sp.join(", "),
                        c.body,
                        rd.join(", ")
                    )?;
                }
            }
        }
        f.write_str("}")
    }
}

/// Errors produced while building a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A tensor name was declared twice.
    DuplicateTensor(String),
    /// A node name was used twice.
    DuplicateNode(String),
    /// A compute body reads a tensor that has not been declared yet.
    UndeclaredTensor {
        /// Node whose body contains the read.
        node: String,
        /// The missing tensor.
        tensor: String,
    },
    /// A compute body references a variable that is not one of its axes.
    UnboundVariable {
        /// Node whose body contains the reference.
        node: String,
        /// The unbound variable.
        var: String,
    },
    /// The graph has no compute node.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateTensor(n) => write!(f, "duplicate tensor `{n}`"),
            GraphError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            GraphError::UndeclaredTensor { node, tensor } => {
                write!(f, "node `{node}` reads undeclared tensor `{tensor}`")
            }
            GraphError::UnboundVariable { node, var } => {
                write!(f, "node `{node}` references unbound variable `{var}`")
            }
            GraphError::Empty => f.write_str("graph has no compute node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental, validating builder for [`Graph`] (the user-facing way to
/// describe a tensor computation, playing the role of FlexTensor's Python
/// compute descriptions).
///
/// # Examples
///
/// ```
/// use flextensor_ir::graph::{GraphBuilder, Axis, Combiner};
/// use flextensor_ir::expr::Expr;
///
/// let mut b = GraphBuilder::new("gemm");
/// b.placeholder("A", vec![64, 32]);
/// b.placeholder("B", vec![32, 16]);
/// b.compute(
///     "gemm",
///     "C",
///     vec![Axis::new("i", 64), Axis::new("j", 16)],
///     vec![Axis::new("k", 32)],
///     Expr::load("A", vec![Expr::var("i"), Expr::var("k")])
///         * Expr::load("B", vec![Expr::var("k"), Expr::var("j")]),
///     Combiner::Sum,
/// );
/// let g = b.finish()?;
/// assert_eq!(g.output().shape, vec![64, 16]);
/// # Ok::<(), flextensor_ir::graph::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    name: String,
    tensors: Vec<TensorDecl>,
    ops: Vec<Op>,
    errors: Vec<GraphError>,
    attrs: Vec<(String, i64)>,
}

impl GraphBuilder {
    /// Starts a new graph with the given name.
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder {
            name: name.into(),
            ..GraphBuilder::default()
        }
    }

    fn declare_tensor(&mut self, decl: TensorDecl) {
        if self.tensors.iter().any(|t| t.name == decl.name) {
            self.errors.push(GraphError::DuplicateTensor(decl.name));
        } else {
            self.tensors.push(decl);
        }
    }

    /// Records an operator attribute (retrievable via [`Graph::attr`]).
    pub fn attr(&mut self, key: impl Into<String>, value: i64) -> &mut Self {
        self.attrs.push((key.into(), value));
        self
    }

    /// Declares an input tensor and its placeholder node.
    pub fn placeholder(&mut self, name: impl Into<String>, shape: Vec<i64>) -> &mut Self {
        let name = name.into();
        self.declare_tensor(TensorDecl {
            name: name.clone(),
            shape,
            kind: TensorKind::Input,
        });
        self.ops.push(Op::Placeholder { tensor: name });
        self
    }

    /// Adds a compute node producing tensor `output` whose shape is the
    /// extents of `spatial`.
    pub fn compute(
        &mut self,
        node: impl Into<String>,
        output: impl Into<String>,
        spatial: Vec<Axis>,
        reduce: Vec<Axis>,
        body: Expr,
        combiner: Combiner,
    ) -> &mut Self {
        let node = node.into();
        let output = output.into();
        if self.ops.iter().any(|o| o.name() == node) {
            self.errors.push(GraphError::DuplicateNode(node.clone()));
        }

        // Validate reads against already-declared tensors (enforces
        // topological construction order).
        let mut loads = Vec::new();
        body.collect_loads(&mut loads);
        for t in &loads {
            if !self.tensors.iter().any(|d| &d.name == t) {
                self.errors.push(GraphError::UndeclaredTensor {
                    node: node.clone(),
                    tensor: t.clone(),
                });
            }
        }

        // Validate variables against the axes.
        let mut vars = Vec::new();
        body.collect_vars(&mut vars);
        for v in &vars {
            let bound = spatial.iter().chain(reduce.iter()).any(|a| &a.name == v);
            if !bound {
                self.errors.push(GraphError::UnboundVariable {
                    node: node.clone(),
                    var: v.clone(),
                });
            }
        }

        let shape = spatial.iter().map(|a| a.extent).collect();
        self.declare_tensor(TensorDecl {
            name: output.clone(),
            shape,
            kind: TensorKind::Intermediate,
        });
        self.ops.push(Op::Compute(ComputeOp {
            name: node,
            output,
            spatial,
            reduce,
            body,
            combiner,
        }));
        self
    }

    /// Finalizes the graph. The tensor produced by the last compute node
    /// becomes the graph output.
    ///
    /// # Errors
    ///
    /// Returns the first validation error recorded during construction, or
    /// [`GraphError::Empty`] if no compute node was added.
    pub fn finish(mut self) -> Result<Graph, GraphError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let last_output = self
            .ops
            .iter()
            .rev()
            .find_map(|o| o.as_compute().map(|c| c.output.clone()))
            .ok_or(GraphError::Empty)?;
        for t in &mut self.tensors {
            if t.name == last_output {
                t.kind = TensorKind::Output;
            }
        }
        Ok(Graph {
            name: self.name,
            tensors: self.tensors,
            ops: self.ops,
            attrs: self.attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_graph() -> Graph {
        let mut b = GraphBuilder::new("gemm");
        b.placeholder("A", vec![8, 4]);
        b.placeholder("B", vec![4, 6]);
        b.compute(
            "gemm",
            "C",
            vec![Axis::new("i", 8), Axis::new("j", 6)],
            vec![Axis::new("k", 4)],
            Expr::load("A", vec![Expr::var("i"), Expr::var("k")])
                * Expr::load("B", vec![Expr::var("k"), Expr::var("j")]),
            Combiner::Sum,
        );
        b.finish().unwrap()
    }

    #[test]
    fn build_gemm_graph() {
        let g = gemm_graph();
        assert_eq!(g.num_compute_nodes(), 1);
        assert_eq!(g.num_nodes_total(), 3);
        assert_eq!(g.output().name, "C");
        assert_eq!(g.output().shape, vec![8, 6]);
        assert_eq!(g.inputs().count(), 2);
    }

    #[test]
    fn gemm_flops_is_2nmk() {
        let g = gemm_graph();
        assert_eq!(g.flops(), 2 * 8 * 6 * 4);
    }

    #[test]
    fn consumers_map_tracks_reads() {
        let g = gemm_graph();
        let cs = g.consumers();
        assert_eq!(cs["A"], vec!["gemm".to_string()]);
        assert_eq!(cs["B"], vec!["gemm".to_string()]);
        assert!(cs["C"].is_empty());
    }

    #[test]
    fn undeclared_tensor_is_rejected() {
        let mut b = GraphBuilder::new("bad");
        b.compute(
            "n",
            "O",
            vec![Axis::new("i", 4)],
            vec![],
            Expr::load("missing", vec![Expr::var("i")]),
            Combiner::Sum,
        );
        assert!(matches!(
            b.finish(),
            Err(GraphError::UndeclaredTensor { .. })
        ));
    }

    #[test]
    fn unbound_variable_is_rejected() {
        let mut b = GraphBuilder::new("bad");
        b.placeholder("A", vec![4]);
        b.compute(
            "n",
            "O",
            vec![Axis::new("i", 4)],
            vec![],
            Expr::load("A", vec![Expr::var("q")]),
            Combiner::Sum,
        );
        assert!(matches!(
            b.finish(),
            Err(GraphError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn duplicate_tensor_is_rejected() {
        let mut b = GraphBuilder::new("bad");
        b.placeholder("A", vec![4]);
        b.placeholder("A", vec![4]);
        assert!(matches!(b.finish(), Err(GraphError::DuplicateTensor(_))));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let mut b = GraphBuilder::new("empty");
        b.placeholder("A", vec![4]);
        assert_eq!(b.finish().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn axis_rejects_nonpositive_extent() {
        let r = std::panic::catch_unwind(|| Axis::new("i", 0));
        assert!(r.is_err());
    }

    #[test]
    fn post_order_matches_declaration_order() {
        let mut b = GraphBuilder::new("two");
        b.placeholder("A", vec![4]);
        b.compute(
            "first",
            "T",
            vec![Axis::new("i", 4)],
            vec![],
            Expr::load("A", vec![Expr::var("i")]) * Expr::float(2.0),
            Combiner::Sum,
        );
        b.compute(
            "second",
            "O",
            vec![Axis::new("i", 4)],
            vec![],
            Expr::load("T", vec![Expr::var("i")]) + Expr::float(1.0),
            Combiner::Sum,
        );
        let g = b.finish().unwrap();
        assert_eq!(
            g.post_order(),
            vec!["first".to_string(), "second".to_string()]
        );
        assert_eq!(g.root_op().name, "second");
    }
}
