//! Algebraic simplification of scalar expressions.
//!
//! Lowering builds index expressions mechanically, e.g.
//! `((i0*1 + i1)*4 + i2)*1 + i3`, leaving many identity operations
//! behind. [`simplify`] folds
//! constants and removes identities, which both makes rendered kernels
//! readable and speeds up the interpreter (which walks every expression
//! once per dynamic iteration).
//!
//! All rules are exact over the values this IR computes: integer index
//! arithmetic and finite `f32`-range data. `x * 0 → 0` is applied only
//! when `x` performs no tensor load (loads can fail on out-of-bounds
//! indices, and dropping one would change error behavior).

use crate::expr::{BinOp, Cond, Expr};

fn is_int(e: &Expr, v: i64) -> bool {
    matches!(e, Expr::IConst(c) if *c == v)
}

fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::IConst(0) | Expr::FConst(0.0))
}

fn is_one(e: &Expr) -> bool {
    is_int(e, 1) || matches!(e, Expr::FConst(c) if *c == 1.0)
}

fn has_load(e: &Expr) -> bool {
    let mut loads = Vec::new();
    e.collect_loads(&mut loads);
    !loads.is_empty()
}

fn fold(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.checked_add(b)?,
        BinOp::Sub => a.checked_sub(b)?,
        BinOp::Mul => a.checked_mul(b)?,
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.div_euclid(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a.rem_euclid(b)
        }
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    })
}

/// Simplifies a condition (recursing into its operands).
pub fn simplify_cond(c: &Cond) -> Cond {
    match c {
        Cond::Cmp(op, a, b) => Cond::Cmp(*op, Box::new(simplify(a)), Box::new(simplify(b))),
        Cond::And(a, b) => Cond::And(Box::new(simplify_cond(a)), Box::new(simplify_cond(b))),
        Cond::Or(a, b) => Cond::Or(Box::new(simplify_cond(a)), Box::new(simplify_cond(b))),
        Cond::Not(a) => Cond::Not(Box::new(simplify_cond(a))),
    }
}

/// Returns an equivalent, usually smaller expression: folds integer
/// constants and strips arithmetic identities (`+0`, `*1`, `-0`, `/1`,
/// `%1`, and load-free `*0`).
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::FConst(_) | Expr::IConst(_) | Expr::Var(_) => e.clone(),
        Expr::Load { tensor, indices } => Expr::Load {
            tensor: tensor.clone(),
            indices: indices.iter().map(simplify).collect(),
        },
        Expr::Select(c, a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            Expr::Select(Box::new(simplify_cond(c)), Box::new(a), Box::new(b))
        }
        Expr::Bin(op, a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            // Constant folding (integers only; float folding could change
            // rounding, and index math is what matters here).
            if let (Expr::IConst(x), Expr::IConst(y)) = (&a, &b) {
                if let Some(v) = fold(*op, *x, *y) {
                    return Expr::IConst(v);
                }
            }
            match op {
                BinOp::Add => {
                    if is_zero(&a) {
                        return b;
                    }
                    if is_zero(&b) {
                        return a;
                    }
                }
                BinOp::Sub => {
                    if is_zero(&b) {
                        return a;
                    }
                }
                BinOp::Mul => {
                    if is_one(&a) {
                        return b;
                    }
                    if is_one(&b) {
                        return a;
                    }
                    if is_zero(&a) && !has_load(&b) || is_zero(&b) && !has_load(&a) {
                        return Expr::IConst(0);
                    }
                }
                BinOp::Div => {
                    if is_one(&b) {
                        return a;
                    }
                }
                BinOp::Mod => {
                    if is_int(&b, 1) {
                        return Expr::IConst(0);
                    }
                }
                BinOp::Min | BinOp::Max => {}
            }
            Expr::Bin(*op, Box::new(a), Box::new(b))
        }
    }
}

/// Number of AST nodes — used to check simplification never grows a term.
pub fn size(e: &Expr) -> usize {
    match e {
        Expr::FConst(_) | Expr::IConst(_) | Expr::Var(_) => 1,
        Expr::Bin(_, a, b) => 1 + size(a) + size(b),
        Expr::Select(_, a, b) => 1 + size(a) + size(b),
        Expr::Load { indices, .. } => 1 + indices.iter().map(size).sum::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn strips_identities() {
        // ((i*1 + 0)*4 + j)*1 + 0 -> i*4 + j
        let e = ((v("i") * 1 + 0) * 4 + v("j")) * 1 + 0;
        let s = simplify(&e);
        assert_eq!(s, v("i") * 4 + v("j"));
    }

    #[test]
    fn folds_integer_constants() {
        let e = (Expr::int(6) * 7 + 2) / 4;
        assert_eq!(simplify(&e), Expr::IConst(11));
        let m = Expr::int(-7).rem(Expr::int(3));
        assert_eq!(simplify(&m), Expr::IConst(2));
    }

    #[test]
    #[allow(clippy::erasing_op)] // the `* 0` is the case under test
    fn mul_zero_without_loads_collapses() {
        let e = v("i") * 0 + v("j");
        assert_eq!(simplify(&e), v("j"));
    }

    #[test]
    #[allow(clippy::erasing_op)] // the `* 0` is the case under test
    fn mul_zero_with_load_is_kept() {
        let e = Expr::load("A", vec![v("i")]) * 0;
        let s = simplify(&e);
        assert!(matches!(s, Expr::Bin(BinOp::Mul, _, _)), "{s}");
    }

    #[test]
    fn div_mod_identities() {
        assert_eq!(simplify(&(v("i") / 1)), v("i"));
        assert_eq!(simplify(&v("i").rem(Expr::int(1))), Expr::IConst(0));
        // Division by zero is never folded.
        let e = Expr::int(4) / 0;
        assert!(matches!(simplify(&e), Expr::Bin(BinOp::Div, _, _)));
    }

    #[test]
    fn recurses_into_loads_and_selects() {
        let e = Expr::select(
            (v("i") * 1).lt(Expr::int(2) + 2),
            Expr::load("A", vec![v("i") + 0]),
            Expr::float(0.0),
        );
        let s = simplify(&e);
        let txt = format!("{s}");
        assert!(txt.contains("A[i]"), "{txt}");
        assert!(txt.contains("< 4"), "{txt}");
    }

    #[test]
    fn never_grows() {
        let exprs = vec![
            ((v("i") * 3 + v("r")) * 1 + 0) * 2,
            Expr::load("W", vec![(v("k") - v("s") + 8).rem(Expr::int(8))]),
            v("a").max(v("b") + 0).min(Expr::int(5) * 2),
        ];
        for e in exprs {
            assert!(size(&simplify(&e)) <= size(&e), "{e}");
        }
    }
}
