//! The benchmark suite of Table 3: twelve operator kinds, each with multiple
//! test cases spanning the FLOP ranges the paper reports.
//!
//! Every evaluation harness (Figs. 5–7, §6.4–§6.6) draws its workloads from
//! here so that all experiments run the exact same shapes.

use std::fmt;

use crate::graph::Graph;
use crate::ops::{self, ConvParams};
use crate::yolo::YOLO_LAYERS;

/// The operator kinds of Table 3 plus the §6.4 "new operators".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Matrix-vector multiply.
    Gemv,
    /// Matrix-matrix multiply.
    Gemm,
    /// Bilinear transformation.
    Bilinear,
    /// 1D convolution.
    Conv1d,
    /// Transposed 1D convolution.
    ConvTranspose1d,
    /// 2D convolution.
    Conv2d,
    /// Transposed 2D convolution.
    ConvTranspose2d,
    /// 3D convolution.
    Conv3d,
    /// Transposed 3D convolution.
    ConvTranspose3d,
    /// Group convolution.
    GroupConv,
    /// Depthwise convolution.
    Depthwise,
    /// Dilated convolution.
    Dilated,
    /// Block-circulant matrix multiply (§6.4).
    Bcm,
    /// Shift operation (§6.4).
    Shift,
}

impl OperatorKind {
    /// The paper's abbreviation (Table 3 "Abbr." column).
    pub fn abbr(&self) -> &'static str {
        match self {
            OperatorKind::Gemv => "GMV",
            OperatorKind::Gemm => "GMM",
            OperatorKind::Bilinear => "BIL",
            OperatorKind::Conv1d => "C1D",
            OperatorKind::ConvTranspose1d => "T1D",
            OperatorKind::Conv2d => "C2D",
            OperatorKind::ConvTranspose2d => "T2D",
            OperatorKind::Conv3d => "C3D",
            OperatorKind::ConvTranspose3d => "T3D",
            OperatorKind::GroupConv => "GRP",
            OperatorKind::Depthwise => "DEP",
            OperatorKind::Dilated => "DIL",
            OperatorKind::Bcm => "BCM",
            OperatorKind::Shift => "SHO",
        }
    }

    /// Parses a Table 3 abbreviation back into its kind (the inverse of
    /// [`OperatorKind::abbr`]). Returns `None` for unknown strings.
    pub fn from_abbr(s: &str) -> Option<OperatorKind> {
        OperatorKind::all().into_iter().find(|k| k.abbr() == s)
    }

    /// Every operator kind: the twelve of Table 3 plus the §6.4 new
    /// operators (BCM, shift).
    pub fn all() -> [OperatorKind; 14] {
        [
            OperatorKind::Gemv,
            OperatorKind::Gemm,
            OperatorKind::Bilinear,
            OperatorKind::Conv1d,
            OperatorKind::ConvTranspose1d,
            OperatorKind::Conv2d,
            OperatorKind::ConvTranspose2d,
            OperatorKind::Conv3d,
            OperatorKind::ConvTranspose3d,
            OperatorKind::GroupConv,
            OperatorKind::Depthwise,
            OperatorKind::Dilated,
            OperatorKind::Bcm,
            OperatorKind::Shift,
        ]
    }

    /// The twelve operators evaluated in Table 3 / Fig. 5 (excludes the
    /// §6.4 new operators).
    pub fn table3() -> [OperatorKind; 12] {
        [
            OperatorKind::Gemv,
            OperatorKind::Gemm,
            OperatorKind::Bilinear,
            OperatorKind::Conv1d,
            OperatorKind::ConvTranspose1d,
            OperatorKind::Conv2d,
            OperatorKind::ConvTranspose2d,
            OperatorKind::Conv3d,
            OperatorKind::ConvTranspose3d,
            OperatorKind::GroupConv,
            OperatorKind::Depthwise,
            OperatorKind::Dilated,
        ]
    }
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbr())
    }
}

fn tconv(inc: i64, outc: i64, kernel: i64, stride: i64, padding: i64) -> ConvParams {
    ConvParams {
        batch: 1,
        in_channels: inc,
        out_channels: outc,
        kernel,
        stride,
        padding,
        dilation: 1,
        groups: 1,
    }
}

/// Builds the test cases of Table 3 for one operator kind (batch size 1,
/// float32, matching §6.1). The number of cases per kind matches the
/// "Test Cases" column: GMV 6, GMM 7, BIL 5, C1D 7, T1D 7, C2D 15, T2D 15,
/// C3D 8, T3D 8, GRP 14, DEP 7, DIL 11.
pub fn test_cases(kind: OperatorKind) -> Vec<Graph> {
    match kind {
        OperatorKind::Gemv => [
            (128, 128),
            (250, 250),
            (500, 500),
            (1000, 512),
            (512, 1024),
            (1000, 1000),
        ]
        .iter()
        .map(|&(n, k)| ops::gemv(n, k))
        .collect(),

        OperatorKind::Gemm => [
            (128, 128, 128),
            (200, 200, 200),
            (500, 500, 500),
            (1000, 1000, 256),
            (1024, 1024, 1024),
            (1200, 1000, 720),
            (2048, 1024, 2048),
        ]
        .iter()
        .map(|&(n, m, k)| ops::gemm(n, m, k))
        .collect(),

        OperatorKind::Bilinear => [
            (500, 500, 64, 32),
            (250, 512, 128, 32),
            (512, 250, 128, 64),
            (1000, 256, 64, 64),
            (512, 512, 100, 36),
        ]
        .iter()
        .map(|&(n, m, k, l)| ops::bilinear(n, m, k, l))
        .collect(),

        OperatorKind::Conv1d => [
            (64, 128, 1024, 3),
            (128, 128, 1024, 3),
            (128, 256, 512, 3),
            (256, 256, 512, 3),
            (256, 512, 256, 3),
            (128, 128, 2048, 3),
            (64, 256, 1024, 7),
        ]
        .iter()
        .map(|&(c, k, len, ker)| ops::conv1d(ConvParams::same(1, c, k, ker), len))
        .collect(),

        OperatorKind::ConvTranspose1d => [
            (128, 64, 512, 4, 2, 1),
            (128, 128, 512, 4, 2, 1),
            (256, 128, 256, 4, 2, 1),
            (256, 256, 256, 4, 2, 1),
            (512, 256, 128, 4, 2, 1),
            (128, 128, 1024, 4, 2, 1),
            (256, 64, 512, 8, 4, 2),
        ]
        .iter()
        .map(|&(c, k, len, ker, st, p)| ops::conv_transpose1d(tconv(c, k, ker, st, p), len))
        .collect(),

        OperatorKind::Conv2d => YOLO_LAYERS.iter().map(|l| l.graph(1)).collect(),

        OperatorKind::ConvTranspose2d => YOLO_LAYERS
            .iter()
            .map(|l| {
                // Mirror each YOLO layer as a transposed convolution with a
                // 4x4 stride-2 deconv kernel (the common upsampling config),
                // preserving the channel structure and FLOP range.
                ops::conv_transpose2d(
                    tconv(l.in_channels.max(4), l.out_channels, 4, 2, 1),
                    l.size / 2,
                    l.size / 2,
                )
            })
            .collect(),

        OperatorKind::Conv3d => [
            (3, 64, 8, 112, 3),
            (64, 64, 8, 56, 3),
            (64, 128, 8, 56, 3),
            (128, 128, 4, 28, 3),
            (128, 256, 4, 28, 3),
            (256, 256, 4, 14, 3),
            (256, 512, 2, 14, 3),
            (512, 512, 2, 7, 3),
        ]
        .iter()
        .map(|&(c, k, d, s, ker)| ops::conv3d(ConvParams::same(1, c, k, ker), d, s, s))
        .collect(),

        OperatorKind::ConvTranspose3d => [
            (64, 64, 4, 28, 4, 2, 1),
            (128, 64, 4, 28, 4, 2, 1),
            (128, 128, 2, 14, 4, 2, 1),
            (256, 128, 2, 14, 4, 2, 1),
            (256, 256, 2, 7, 4, 2, 1),
            (512, 256, 2, 7, 4, 2, 1),
            (512, 512, 1, 7, 4, 2, 1),
            (64, 32, 8, 28, 4, 2, 1),
        ]
        .iter()
        .map(|&(c, k, d, s, ker, st, p)| ops::conv_transpose3d(tconv(c, k, ker, st, p), d, s, s))
        .collect(),

        OperatorKind::GroupConv => {
            // ResNeXt / ShuffleNet style group convolutions.
            let cfgs: [(i64, i64, i64, i64); 14] = [
                (128, 128, 56, 4),
                (128, 128, 56, 8),
                (256, 256, 28, 4),
                (256, 256, 28, 8),
                (256, 256, 28, 16),
                (512, 512, 14, 4),
                (512, 512, 14, 8),
                (512, 512, 14, 16),
                (512, 512, 14, 32),
                (1024, 1024, 7, 8),
                (1024, 1024, 7, 16),
                (1024, 1024, 7, 32),
                (256, 512, 28, 8),
                (512, 1024, 14, 8),
            ];
            cfgs.iter()
                .map(|&(c, k, s, g)| {
                    ops::group_conv2d(ConvParams::same(1, c, k, 3).with_groups(g), s, s)
                })
                .collect()
        }

        OperatorKind::Depthwise => {
            // MobileNet-style depthwise layers (tiny FLOP counts, Table 3:
            // 250K–3.6M).
            let cfgs: [(i64, i64, i64); 7] = [
                (32, 56, 1),
                (64, 56, 2),
                (128, 28, 1),
                (128, 28, 2),
                (256, 14, 1),
                (512, 14, 1),
                (1024, 7, 1),
            ];
            cfgs.iter()
                .map(|&(c, s, st)| ops::depthwise_conv2d(1, c, 1, s, s, 3, st, 1))
                .collect()
        }

        OperatorKind::Dilated => {
            // DeepLab-style dilated convolutions.
            let cfgs: [(i64, i64, i64, i64); 11] = [
                (128, 128, 56, 2),
                (128, 256, 56, 2),
                (256, 256, 28, 2),
                (256, 256, 28, 4),
                (256, 512, 28, 2),
                (512, 512, 14, 2),
                (512, 512, 14, 4),
                (512, 1024, 14, 2),
                (1024, 1024, 14, 2),
                (1024, 1024, 7, 2),
                (512, 512, 28, 2),
            ];
            cfgs.iter()
                .map(|&(c, k, s, d)| {
                    let p = ConvParams {
                        batch: 1,
                        in_channels: c,
                        out_channels: k,
                        kernel: 3,
                        stride: 1,
                        padding: d,
                        dilation: d,
                        groups: 1,
                    };
                    ops::dilated_conv2d(p, s, s)
                })
                .collect()
        }

        OperatorKind::Bcm => [
            (16, 16, 64),
            (32, 32, 64),
            (16, 16, 128),
            (32, 16, 128),
            (64, 64, 32),
        ]
        .iter()
        .map(|&(p, q, k)| ops::bcm(1, p, q, k))
        .collect(),

        OperatorKind::Shift => [(64, 56), (128, 28), (256, 28), (512, 14), (1024, 7)]
            .iter()
            .map(|&(c, s)| ops::shift2d(1, c, s, s))
            .collect(),
    }
}

/// A miniature instance of one operator kind, sized so that reference
/// interpretation finishes in milliseconds. The conformance fuzzer checks
/// every schedule-space point it samples against the reference evaluator on
/// these shapes; they keep the axis structure (and therefore the schedule
/// space shape) of the Table 3 workloads while shrinking every extent to a
/// small composite number so divisor-aware sampling still has factors to
/// scatter.
pub fn small_case(kind: OperatorKind) -> Graph {
    match kind {
        OperatorKind::Gemv => ops::gemv(8, 6),
        OperatorKind::Gemm => ops::gemm(8, 6, 4),
        OperatorKind::Bilinear => ops::bilinear(6, 4, 4, 2),
        OperatorKind::Conv1d => ops::conv1d(ConvParams::same(1, 3, 4, 3), 8),
        OperatorKind::ConvTranspose1d => ops::conv_transpose1d(tconv(2, 3, 4, 2, 1), 4),
        OperatorKind::Conv2d => ops::conv2d(ConvParams::same(1, 2, 4, 3), 6, 6),
        OperatorKind::ConvTranspose2d => ops::conv_transpose2d(tconv(2, 2, 4, 2, 1), 4, 4),
        OperatorKind::Conv3d => ops::conv3d(ConvParams::same(1, 2, 3, 3), 2, 4, 4),
        OperatorKind::ConvTranspose3d => ops::conv_transpose3d(tconv(1, 2, 2, 2, 0), 2, 2, 2),
        OperatorKind::GroupConv => {
            ops::group_conv2d(ConvParams::same(1, 4, 4, 3).with_groups(2), 4, 4)
        }
        OperatorKind::Depthwise => ops::depthwise_conv2d(1, 4, 2, 5, 5, 3, 1, 1),
        OperatorKind::Dilated => {
            let p = ConvParams {
                batch: 1,
                in_channels: 2,
                out_channels: 3,
                kernel: 3,
                stride: 1,
                padding: 2,
                dilation: 2,
                groups: 1,
            };
            ops::dilated_conv2d(p, 6, 6)
        }
        OperatorKind::Bcm => ops::bcm(1, 2, 2, 4),
        OperatorKind::Shift => ops::shift2d(1, 9, 4, 4),
    }
}

/// Expected number of test cases per Table 3 row.
pub fn expected_case_count(kind: OperatorKind) -> usize {
    match kind {
        OperatorKind::Gemv => 6,
        OperatorKind::Gemm => 7,
        OperatorKind::Bilinear => 5,
        OperatorKind::Conv1d | OperatorKind::ConvTranspose1d => 7,
        OperatorKind::Conv2d | OperatorKind::ConvTranspose2d => 15,
        OperatorKind::Conv3d | OperatorKind::ConvTranspose3d => 8,
        OperatorKind::GroupConv => 14,
        OperatorKind::Depthwise => 7,
        OperatorKind::Dilated => 11,
        OperatorKind::Bcm | OperatorKind::Shift => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_counts_match_table3() {
        for kind in OperatorKind::table3() {
            assert_eq!(
                test_cases(kind).len(),
                expected_case_count(kind),
                "operator {kind}"
            );
        }
    }

    #[test]
    fn gemv_flops_range() {
        // Table 3: GMV 16K–1M... our smallest is 2*128*128 = 32K, largest 2M;
        // within the same order of magnitude as the paper's range.
        for g in test_cases(OperatorKind::Gemv) {
            let f = g.flops();
            assert!((16_000..=4_000_000).contains(&f), "{}: {f}", g.name);
        }
    }

    #[test]
    fn gemm_flops_range() {
        // Table 3: GMM 32K–8.6G.
        for g in test_cases(OperatorKind::Gemm) {
            let f = g.flops();
            assert!(f <= 8_600_000_000, "{}: {f}", g.name);
        }
        let max = test_cases(OperatorKind::Gemm)
            .iter()
            .map(|g| g.flops())
            .max()
            .unwrap();
        assert!(max > 8_000_000_000, "largest GEMM should be ~8.6G: {max}");
    }

    #[test]
    fn depthwise_flops_are_tiny() {
        // Table 3: DEP 250K–3.6M.
        for g in test_cases(OperatorKind::Depthwise) {
            let f = g.flops();
            assert!((100_000..=8_000_000).contains(&f), "{}: {f}", g.name);
        }
    }

    #[test]
    fn conv2d_cases_are_the_yolo_layers() {
        let cases = test_cases(OperatorKind::Conv2d);
        assert_eq!(cases[0].output().shape, vec![1, 64, 224, 224]);
        assert_eq!(cases[14].output().shape, vec![1, 1024, 7, 7]);
    }

    #[test]
    fn all_graphs_have_positive_output() {
        let mut all: Vec<OperatorKind> = OperatorKind::table3().to_vec();
        all.push(OperatorKind::Bcm);
        all.push(OperatorKind::Shift);
        for kind in all {
            for g in test_cases(kind) {
                assert!(g.output().num_elements() > 0, "{}", g.name);
            }
        }
    }

    #[test]
    fn abbr_round_trips_for_every_kind() {
        for kind in OperatorKind::all() {
            assert_eq!(OperatorKind::from_abbr(kind.abbr()), Some(kind));
        }
        assert_eq!(OperatorKind::from_abbr("nope"), None);
    }

    #[test]
    fn small_cases_are_small() {
        for kind in OperatorKind::all() {
            let g = small_case(kind);
            // Total iteration-domain size of the anchor op bounds the cost
            // of one reference interpretation.
            let anchor = g.anchor_op();
            let domain = anchor.spatial_size() * anchor.reduce_size();
            assert!(domain > 0, "{}: empty domain", g.name);
            assert!(domain <= 20_000, "{}: domain {domain} too large", g.name);
        }
    }

    #[test]
    fn group_conv_flops_range() {
        // Table 3: GRP 20M–900M.
        for g in test_cases(OperatorKind::GroupConv) {
            let f = g.flops();
            assert!((10_000_000..=1_000_000_000).contains(&f), "{}: {f}", g.name);
        }
    }
}
