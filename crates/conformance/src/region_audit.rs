//! Deterministic region-analysis audit over the `probe_perf` workloads.
//!
//! For each workload the audit runs a small region-gated search, then
//! pits the abstract interpretation against the realized result: the
//! root factor box's certified `[lo, hi]` bound must contain the best
//! cost the search actually found (the best config is a member of the
//! root box by construction), and the live-gate / certification-sweep
//! counters are reported verbatim. Everything is a pure function of the
//! committed seed and trial budget, so the rendered report is
//! byte-stable — CI diffs it against the committed golden copy
//! (`crates/conformance/region-golden.txt`) to catch bound or counter
//! drift, and `tests/region_audit.rs` runs the same comparison as an
//! ordinary test.

use flextensor_analyze::{analyze_region, RegionVerdict};
use flextensor_explore::methods::{search, Method, SearchOptions};
use flextensor_explore::sweep::root_region;
use flextensor_ir::graph::Graph;
use flextensor_ir::ops::{self, ConvParams};
use flextensor_schedule::template::LoweredTemplate;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, Device};

/// Audit seed — the same one `probe_perf` pins its workloads to.
pub const AUDIT_SEED: u64 = 2024;

/// Trial budget per workload; small enough to keep the audit quick,
/// large enough that the region gate and sweep both do real work.
pub const AUDIT_TRIALS: usize = 12;

/// The three `probe_perf` workloads the audit runs, by name.
pub fn audit_workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("gemm_256", ops::gemm(256, 256, 256)),
        (
            "conv2d_64x128_14",
            ops::conv2d(ConvParams::same(1, 64, 128, 3), 14, 14),
        ),
        (
            "group_conv2d_8g_256_28",
            ops::group_conv2d(ConvParams::same(1, 256, 256, 3).with_groups(8), 28, 28),
        ),
    ]
}

/// Rendered audit plus the number of soundness violations found
/// (a violation here means a certified bound excluded the realized best
/// — grounds to stop the presses, not regenerate the golden).
#[derive(Debug, Clone)]
pub struct RegionAuditReport {
    /// Stable line-oriented text, diffed against the committed golden.
    pub text: String,
    /// Bounds that failed to contain their workload's realized best.
    pub violations: usize,
}

/// Runs the audit over [`audit_workloads`] on the V100 GPU model.
pub fn region_audit() -> RegionAuditReport {
    let workloads = audit_workloads();
    let mut text = format!(
        "== region audit: {} workload(s), seed {AUDIT_SEED}, {AUDIT_TRIALS} trial(s) ==\n",
        workloads.len()
    );
    let mut violations = 0usize;
    for (name, graph) in &workloads {
        let ev = Evaluator::new(Device::Gpu(v100()));
        let opts = SearchOptions {
            trials: AUDIT_TRIALS,
            starts: 4,
            initial_samples: 8,
            seed: AUDIT_SEED,
            region_gate: true,
            ..SearchOptions::default()
        };
        let r = search(graph, &ev, Method::QMethod, &opts).expect("audit search finds a point");
        let best = r.best_cost.seconds;
        text.push_str(&format!("{name} [gpu]\n"));
        text.push_str(&format!(
            "  realized best: {best:.6e} s in {} measurement(s)\n",
            r.measurements
        ));
        let tpl = LoweredTemplate::new(graph, ev.target());
        match root_region(&tpl, &r.best).map(|reg| analyze_region(&tpl, &reg, &ev)) {
            Some(RegionVerdict::Bounded { lo, hi }) => {
                let contains = lo <= best && best <= hi;
                if !contains {
                    violations += 1;
                }
                text.push_str(&format!(
                    "  root bound: [{lo:.6e}, {hi:.6e}] s — {}\n",
                    if contains {
                        "contains the realized best"
                    } else {
                        "VIOLATION: excludes the realized best"
                    }
                ));
            }
            Some(RegionVerdict::Illegal(d)) => {
                violations += 1;
                text.push_str(&format!(
                    "  root bound: VIOLATION: certified illegal ({} at {}) around a feasible best\n",
                    d.rule, d.span
                ));
            }
            None => {
                violations += 1;
                text.push_str("  root bound: VIOLATION: root region failed to build\n");
            }
        }
        text.push_str(&format!(
            "  live gate: {} pruned across {} region(s)\n",
            r.eval_stats.region_pruned, r.eval_stats.regions_analyzed
        ));
        let s = r.region_sweep.expect("region-gated search sweeps");
        text.push_str(&format!(
            "  sweep: {} examined: {} illegal, {} pruned, {} open{}\n",
            s.examined,
            s.certified_illegal,
            s.certified_pruned,
            s.open,
            if s.truncated { ", truncated" } else { "" }
        ));
    }
    text.push_str(&format!(
        "summary: {} across {} workload(s)\n",
        if violations == 0 {
            "every certified bound contains its realized best".to_string()
        } else {
            format!("{violations} soundness violation(s)")
        },
        workloads.len()
    ));
    RegionAuditReport { text, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_is_deterministic() {
        let a = region_audit();
        let b = region_audit();
        assert_eq!(a.text, b.text);
        assert_eq!(a.violations, 0, "{}", a.text);
    }
}
