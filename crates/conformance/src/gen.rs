//! Config generation for the fuzzer: valid points come from the schedule
//! space's divisor-aware sampler ([`Space::random_point`], which scatters
//! prime factors so every split is exact); *near-invalid mutants* come from
//! this module, which takes a valid config and corrupts exactly one field.
//!
//! Each [`Mutation`] breaks one validator invariant while leaving every
//! other field untouched, so a validator that checks invariants
//! independently must reject the mutant — and a validator that has gone
//! lax on one invariant is caught by exactly one mutation class.
//!
//! [`Space::random_point`]: flextensor_explore::space::Space::random_point

use flextensor_ir::graph::ComputeOp;
use flextensor_schedule::config::{NodeConfig, SPATIAL_PARTS};

/// One deliberate, single-field corruption of a valid config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Double one spatial split factor (product no longer equals extent).
    SpatialFactorBump,
    /// Zero one spatial split factor.
    SpatialFactorZero,
    /// Negate one spatial split factor.
    SpatialFactorNegative,
    /// Double one reduce split factor.
    ReduceFactorBump,
    /// Drop one level from a spatial axis's split (wrong factor count).
    SpatialSplitTruncate,
    /// Append an extra level to a spatial axis's split.
    SpatialSplitExtend,
    /// Duplicate the first reorder entry (not a permutation).
    ReorderDuplicate,
    /// Point one reorder entry past the axis count.
    ReorderOutOfRange,
    /// Drop the last reorder entry (length mismatch).
    ReorderTruncate,
    /// Set the fuse depth to zero.
    FuseZero,
    /// Set the fuse depth past the spatial axis count.
    FuseOverflow,
    /// Zero the FPGA partition factor.
    PartitionZero,
    /// Push the FPGA pipeline depth past 3.
    PipelineOverflow,
}

/// Every mutation class, in the fixed order the fuzzer applies them.
pub const ALL_MUTATIONS: &[Mutation] = &[
    Mutation::SpatialFactorBump,
    Mutation::SpatialFactorZero,
    Mutation::SpatialFactorNegative,
    Mutation::ReduceFactorBump,
    Mutation::SpatialSplitTruncate,
    Mutation::SpatialSplitExtend,
    Mutation::ReorderDuplicate,
    Mutation::ReorderOutOfRange,
    Mutation::ReorderTruncate,
    Mutation::FuseZero,
    Mutation::FuseOverflow,
    Mutation::PartitionZero,
    Mutation::PipelineOverflow,
];

impl Mutation {
    /// Stable kebab-case name used in fixture files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::SpatialFactorBump => "spatial-factor-bump",
            Mutation::SpatialFactorZero => "spatial-factor-zero",
            Mutation::SpatialFactorNegative => "spatial-factor-negative",
            Mutation::ReduceFactorBump => "reduce-factor-bump",
            Mutation::SpatialSplitTruncate => "spatial-split-truncate",
            Mutation::SpatialSplitExtend => "spatial-split-extend",
            Mutation::ReorderDuplicate => "reorder-duplicate",
            Mutation::ReorderOutOfRange => "reorder-out-of-range",
            Mutation::ReorderTruncate => "reorder-truncate",
            Mutation::FuseZero => "fuse-zero",
            Mutation::FuseOverflow => "fuse-overflow",
            Mutation::PartitionZero => "partition-zero",
            Mutation::PipelineOverflow => "pipeline-overflow",
        }
    }

    /// Parses [`Mutation::name`] output back into a mutation.
    pub fn from_name(s: &str) -> Option<Mutation> {
        ALL_MUTATIONS.iter().copied().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies `mutation` to a valid `cfg`, producing a config the validator
/// must reject. Returns `None` when the op's shape makes the mutation
/// inapplicable (e.g. no reduce axes to corrupt, or a single spatial axis
/// where a duplicate entry cannot be formed).
pub fn mutate(cfg: &NodeConfig, op: &ComputeOp, mutation: Mutation) -> Option<NodeConfig> {
    let mut out = cfg.clone();
    match mutation {
        Mutation::SpatialFactorBump => {
            out.spatial_splits.first_mut()?[0] *= 2;
            // Doubling strictly grows the product, so it cannot equal the
            // extent again.
        }
        Mutation::SpatialFactorZero => {
            out.spatial_splits.first_mut()?[SPATIAL_PARTS - 1] = 0;
        }
        Mutation::SpatialFactorNegative => {
            let f = out.spatial_splits.first_mut()?;
            f[SPATIAL_PARTS - 1] = -f[SPATIAL_PARTS - 1];
        }
        Mutation::ReduceFactorBump => {
            out.reduce_splits.first_mut()?[0] *= 2;
        }
        Mutation::SpatialSplitTruncate => {
            out.spatial_splits.first_mut()?.pop();
        }
        Mutation::SpatialSplitExtend => {
            out.spatial_splits.first_mut()?.push(1);
        }
        Mutation::ReorderDuplicate => {
            if out.reorder.len() < 2 {
                return None;
            }
            let first = out.reorder[0];
            let last = out.reorder.len() - 1;
            out.reorder[last] = first;
        }
        Mutation::ReorderOutOfRange => {
            *out.reorder.first_mut()? = op.spatial.len();
        }
        Mutation::ReorderTruncate => {
            out.reorder.pop()?;
        }
        Mutation::FuseZero => {
            out.fuse_outer = 0;
        }
        Mutation::FuseOverflow => {
            out.fuse_outer = op.spatial.len() + 1;
        }
        Mutation::PartitionZero => {
            out.fpga_partition = 0;
        }
        Mutation::PipelineOverflow => {
            out.fpga_pipeline = 4;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextensor_ir::ops;

    #[test]
    fn mutation_names_round_trip() {
        for &m in ALL_MUTATIONS {
            assert_eq!(Mutation::from_name(m.name()), Some(m));
        }
        assert_eq!(Mutation::from_name("bogus"), None);
    }

    #[test]
    fn every_mutant_of_a_naive_gemm_is_rejected() {
        let g = ops::gemm(8, 6, 4);
        let op = g.root_op();
        let base = NodeConfig::naive(op);
        base.validate(op).unwrap();
        for &m in ALL_MUTATIONS {
            let Some(bad) = mutate(&base, op, m) else {
                panic!("{m} should apply to gemm");
            };
            assert!(bad.validate(op).is_err(), "{m} accepted by validator");
        }
    }

    #[test]
    fn reorder_duplicate_needs_two_axes() {
        let g = ops::gemv(8, 6);
        let op = g.root_op();
        let base = NodeConfig::naive(op);
        assert_eq!(mutate(&base, op, Mutation::ReorderDuplicate), None);
    }

    #[test]
    fn mutants_change_exactly_the_targeted_field() {
        let g = ops::gemm(8, 6, 4);
        let op = g.root_op();
        let base = NodeConfig::naive(op);
        let bad = mutate(&base, op, Mutation::FuseZero).unwrap();
        assert_eq!(bad.spatial_splits, base.spatial_splits);
        assert_eq!(bad.reorder, base.reorder);
        assert_eq!(bad.fuse_outer, 0);
    }
}
