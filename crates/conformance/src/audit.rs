//! Static-analyzer audit of the regression corpus — the library behind
//! the `probe_analyze` binary.
//!
//! Every committed fixture is pushed through `flextensor-analyze` on the
//! device model matching its target, and the analyzer's verdict is
//! compared with the fixture's recorded expectation: `Pass` fixtures must
//! be `Error`-free, `Reject` fixtures must be refused (at decode, or by
//! an `Error`-level diagnostic). The rendered report is deterministic —
//! no wall-clock, no paths — so CI can diff it against a committed golden
//! copy and fail on any verdict drift.

use flextensor_analyze::{analyze_schedule, Report};
use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};

use crate::corpus::{Expectation, Fixture};

/// The device model the audit analyzes a target's fixtures against (the
/// same models the oracle tiers use).
pub fn audit_device(target: TargetKind) -> Device {
    match target {
        TargetKind::Cpu => Device::Cpu(xeon_e5_2699_v4()),
        TargetKind::Gpu => Device::Gpu(v100()),
        TargetKind::Fpga => Device::Fpga(vu9p()),
    }
}

/// The analyzer's verdict on one fixture.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Fixture name (file stem).
    pub name: String,
    /// The fixture's operator kind.
    pub kind: OperatorKind,
    /// The fixture's target.
    pub target: TargetKind,
    /// What the fixture expects of its config.
    pub expect: Expectation,
    /// Decode failure, when the encoded vector never became a config
    /// (an acceptable rejection for `Reject` fixtures).
    pub decode_error: Option<String>,
    /// The analyzer report, when the config decoded.
    pub report: Option<Report>,
    /// Whether the verdict matches the expectation: `Pass` ⇒ `Error`-free,
    /// `Reject` ⇒ refused at decode or `Error`-level diagnostics.
    pub matches: bool,
}

/// The whole corpus audit.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// One entry per fixture, in corpus (file-name) order.
    pub entries: Vec<AuditEntry>,
}

impl AuditReport {
    /// Fixtures whose analyzer verdict contradicts their expectation.
    pub fn mismatches(&self) -> usize {
        self.entries.iter().filter(|e| !e.matches).count()
    }

    /// Renders the audit as stable, line-oriented text.
    pub fn render_text(&self) -> String {
        let mut out = format!("== analyzer audit: {} fixture(s) ==\n", self.entries.len());
        let (mut errors, mut warnings, mut infos) = (0, 0, 0);
        for e in &self.entries {
            out.push_str(&format!(
                "{} [{}/{}, {}]{}\n",
                e.name,
                e.kind.abbr(),
                e.target,
                e.expect.name(),
                if e.matches { "" } else { "  <-- MISMATCH" },
            ));
            if let Some(err) = &e.decode_error {
                out.push_str(&format!("  rejected at decode: {err}\n"));
            }
            if let Some(r) = &e.report {
                errors += r.error_count();
                warnings += r.warn_count();
                infos += r.info_count();
                if r.diagnostics.is_empty() {
                    out.push_str("  clean\n");
                } else {
                    for d in &r.diagnostics {
                        out.push_str(&format!("  {d}\n"));
                    }
                }
            }
        }
        out.push_str(&format!(
            "summary: {errors} error(s), {warnings} warning(s), {infos} info(s) across {} \
             fixture(s); {}\n",
            self.entries.len(),
            match self.mismatches() {
                0 => "every verdict matches its expectation".to_string(),
                n => format!("{n} VERDICT MISMATCH(ES)"),
            }
        ));
        out
    }

    /// Renders the audit as one deterministic JSON document.
    pub fn to_json(&self) -> String {
        use flextensor_telemetry::json::write_str;
        let mut out = format!(
            "{{\"version\":1,\"fixtures\":{},\"mismatches\":{},\"entries\":[",
            self.entries.len(),
            self.mismatches()
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_str(&mut out, &e.name);
            out.push_str(",\"kind\":");
            write_str(&mut out, e.kind.abbr());
            out.push_str(",\"target\":");
            write_str(&mut out, &e.target.to_string());
            out.push_str(",\"expect\":");
            write_str(&mut out, e.expect.name());
            out.push_str(&format!(",\"matches\":{}", e.matches));
            if let Some(err) = &e.decode_error {
                out.push_str(",\"decode_error\":");
                write_str(&mut out, err);
            }
            if let Some(r) = &e.report {
                out.push_str(",\"report\":");
                out.push_str(&r.to_json());
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Audits one fixture: decodes its stored encoding and analyzes the
/// schedule on the device model of the fixture's target.
pub fn audit_fixture(f: &Fixture) -> AuditEntry {
    let graph = small_case(f.kind);
    let device = audit_device(f.target);
    match NodeConfig::decode(graph.anchor_op(), &f.encoded) {
        Err(e) => AuditEntry {
            name: f.name.clone(),
            kind: f.kind,
            target: f.target,
            expect: f.expect,
            decode_error: Some(e),
            report: None,
            matches: f.expect == Expectation::Reject,
        },
        Ok(cfg) => {
            let report = analyze_schedule(&graph, &cfg, &device);
            let matches = match f.expect {
                Expectation::Pass => report.error_count() == 0,
                Expectation::Reject => report.error_count() > 0,
            };
            AuditEntry {
                name: f.name.clone(),
                kind: f.kind,
                target: f.target,
                expect: f.expect,
                decode_error: None,
                report: Some(report),
                matches,
            }
        }
    }
}

/// Audits a whole corpus, preserving fixture order.
pub fn audit_corpus(fixtures: &[Fixture]) -> AuditReport {
    AuditReport {
        entries: fixtures.iter().map(audit_fixture).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::seed_corpus;

    #[test]
    fn seed_corpus_audit_is_deterministic_and_matches_expectations() {
        let fixtures = seed_corpus();
        let a = audit_corpus(&fixtures);
        let b = audit_corpus(&fixtures);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.mismatches(), 0, "{}", a.render_text());
        assert_eq!(a.entries.len(), fixtures.len());
    }

    #[test]
    fn audit_text_reports_verdicts_per_fixture() {
        let text = audit_corpus(&seed_corpus()).render_text();
        assert!(text.contains("== analyzer audit:"), "{text}");
        assert!(text.contains("101-gemm-naive [GMM/cpu, pass]"), "{text}");
        // Pass fixtures may still carry performance lints — only
        // `Error`-level diagnostics contradict a pass expectation.
        assert!(text.contains("warn[perf/tail-remainder]"), "{text}");
        assert!(text.contains("error[legality/split-shape]"), "{text}");
        assert!(
            text.contains("every verdict matches its expectation"),
            "{text}"
        );
        assert!(!text.contains("MISMATCH"), "{text}");
    }

    #[test]
    fn audit_flags_a_wrong_expectation() {
        let mut fixtures = seed_corpus();
        let last = fixtures.last_mut().unwrap();
        assert_eq!(last.expect, Expectation::Pass);
        last.expect = Expectation::Reject;
        let a = audit_corpus(&fixtures);
        assert_eq!(a.mismatches(), 1);
        assert!(a.render_text().contains("MISMATCH"));
        assert!(a.to_json().contains("\"matches\":false"));
    }
}
