//! The regression corpus: shrunk failing (and sentinel passing) cases,
//! stored as one JSON file each and replayed as ordinary `cargo test`.
//!
//! A fixture stores the *encoded* config vector rather than a structured
//! config, for two reasons: the encoding is the repo's stable exchange
//! format for schedule points, and rejected fixtures whose corruption is
//! unrepresentable after decoding (truncated splits, out-of-range reorder
//! entries) exercise `NodeConfig::decode` hardening on every replay.
//!
//! Field order in the files is fixed and the writer is deterministic, so
//! regenerating the seed corpus is byte-stable.

use std::path::Path;

use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use flextensor_telemetry::json::{self, Json};

use crate::gen::{mutate, Mutation};
use crate::oracle::{
    check_analyzer, check_model, check_mutant_rejected, check_semantic, check_structural,
    oracle_devices,
};
use crate::shrink::shrink;

/// What replaying a fixture must conclude about its config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The config is valid: it must pass all three oracle tiers.
    Pass,
    /// The config is corrupted: every layer must reject it.
    Reject,
}

impl Expectation {
    /// Stable on-disk name.
    pub fn name(&self) -> &'static str {
        match self {
            Expectation::Pass => "pass",
            Expectation::Reject => "reject",
        }
    }

    /// Parses [`Expectation::name`] output.
    pub fn from_name(s: &str) -> Option<Expectation> {
        match s {
            "pass" => Some(Expectation::Pass),
            "reject" => Some(Expectation::Reject),
            _ => None,
        }
    }
}

/// One corpus entry: an encoded config plus everything needed to rebuild
/// the graph it applies to and the verdict replay must reach.
#[derive(Debug, Clone, PartialEq)]
pub struct Fixture {
    /// File stem; numeric prefix fixes the replay order.
    pub name: String,
    /// Which suite operator ([`small_case`] shape) the config targets.
    pub kind: OperatorKind,
    /// Target used for the semantic oracle on `Pass` fixtures.
    pub target: TargetKind,
    /// Required replay verdict.
    pub expect: Expectation,
    /// The config as an [`NodeConfig::encode`] vector.
    pub encoded: Vec<i64>,
    /// Human note: which mutation/seed produced this, or why it is kept.
    pub note: String,
}

fn target_from_name(s: &str) -> Option<TargetKind> {
    match s {
        "cpu" => Some(TargetKind::Cpu),
        "gpu" => Some(TargetKind::Gpu),
        "fpga" => Some(TargetKind::Fpga),
        _ => None,
    }
}

impl Fixture {
    /// Renders the fixture as its on-disk JSON document (fixed field
    /// order, one field per line, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"name\": ");
        json::write_str(&mut out, &self.name);
        out.push_str(",\n  \"kind\": ");
        json::write_str(&mut out, self.kind.abbr());
        out.push_str(",\n  \"target\": ");
        json::write_str(&mut out, &self.target.to_string());
        out.push_str(",\n  \"expect\": ");
        json::write_str(&mut out, self.expect.name());
        out.push_str(",\n  \"encoded\": [");
        for (i, v) in self.encoded.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push_str("],\n  \"note\": ");
        json::write_str(&mut out, &self.note);
        out.push_str("\n}\n");
        out
    }

    /// Parses a fixture file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(src: &str) -> Result<Fixture, String> {
        let v = json::parse(src)?;
        let kind_s = v.get_str("kind")?;
        let kind = OperatorKind::from_abbr(kind_s)
            .ok_or_else(|| format!("unknown operator kind `{kind_s}`"))?;
        let target_s = v.get_str("target")?;
        let target =
            target_from_name(target_s).ok_or_else(|| format!("unknown target `{target_s}`"))?;
        let expect_s = v.get_str("expect")?;
        let expect = Expectation::from_name(expect_s)
            .ok_or_else(|| format!("unknown expectation `{expect_s}`"))?;
        let encoded = match v.get("encoded")? {
            Json::Array(items) => items
                .iter()
                .map(|item| match item {
                    Json::Number(n) => n
                        .parse::<i64>()
                        .map_err(|e| format!("bad encoded entry `{n}`: {e}")),
                    other => Err(format!("encoded entry is not a number: {other:?}")),
                })
                .collect::<Result<Vec<i64>, String>>()?,
            other => Err(format!("field `encoded`: expected array, got {other:?}"))?,
        };
        Ok(Fixture {
            name: v.get_str("name")?.to_string(),
            kind,
            target,
            expect,
            encoded,
            note: v.get_str("note")?.to_string(),
        })
    }

    /// Replays the fixture against the current implementation.
    ///
    /// `Pass` fixtures must decode, round-trip, and clear all four oracle
    /// tiers (the analyzer tier on every device model); `Reject` fixtures
    /// must be refused — by `decode` itself, or by the validator and
    /// lowering for every target once decoded.
    ///
    /// # Errors
    ///
    /// Returns a description of the first check the implementation failed.
    pub fn replay(&self) -> Result<(), String> {
        let graph = small_case(self.kind);
        let op = graph.anchor_op();
        match self.expect {
            Expectation::Pass => {
                let cfg = NodeConfig::decode(op, &self.encoded)
                    .map_err(|e| format!("pass fixture failed to decode: {e}"))?;
                if cfg.encode() != self.encoded {
                    return Err("decode/encode changed the stored vector".into());
                }
                check_structural(op, &cfg)?;
                check_semantic(&graph, &cfg, self.target, 7)?;
                check_model(&graph, &cfg)?;
                for device in oracle_devices() {
                    check_analyzer(&graph, &cfg, &device, 7)?;
                }
                Ok(())
            }
            Expectation::Reject => match NodeConfig::decode(op, &self.encoded) {
                // Rejected at the decoding layer: exactly what we want.
                Err(_) => Ok(()),
                Ok(cfg) => check_mutant_rejected(&graph, &cfg),
            },
        }
    }
}

/// Loads every `*.json` fixture under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns an error naming the unreadable or malformed file.
pub fn load_corpus(dir: &Path) -> Result<Vec<Fixture>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let src =
            std::fs::read_to_string(&p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        out.push(
            Fixture::from_json(&src)
                .map_err(|e| format!("malformed fixture {}: {e}", p.display()))?,
        );
    }
    Ok(out)
}

/// Builds the deterministic seed corpus committed to the repository: one
/// shrunk mutant per rejection *class* (product mismatch, broken
/// permutation, wrong arity, bad fuse depth, bad FPGA parameters — each
/// refused at a different layer) plus two known-good sentinels.
pub fn seed_corpus() -> Vec<Fixture> {
    use flextensor_explore::space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut out = Vec::new();
    let mut reject = |idx: usize, kind: OperatorKind, mutation: Mutation, seed: u64| {
        let graph = small_case(kind);
        let op = graph.anchor_op().clone();
        // Start from a busy random point so the shrinker has real work to
        // do; what survives shrinking is the minimal reproducer.
        let space = Space::new(&graph, TargetKind::Gpu);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = space.random_point(&mut rng);
        let bad = mutate(&base, &op, mutation).expect("seed mutation applies");
        let shrunk = shrink(&op, &bad, |c| c.validate(&op).is_err());
        out.push(Fixture {
            name: format!("{idx:03}-{}-{mutation}", kind.abbr().to_lowercase()),
            kind,
            target: TargetKind::Gpu,
            expect: Expectation::Reject,
            encoded: shrunk.encode(),
            note: format!("shrunk {mutation} mutant of a seed-{seed} random point"),
        });
    };
    reject(1, OperatorKind::Gemm, Mutation::SpatialFactorBump, 11);
    reject(2, OperatorKind::Gemm, Mutation::ReorderDuplicate, 12);
    reject(3, OperatorKind::Conv2d, Mutation::SpatialSplitTruncate, 13);
    reject(4, OperatorKind::Gemv, Mutation::FuseZero, 14);
    reject(5, OperatorKind::Bcm, Mutation::PartitionZero, 15);
    reject(6, OperatorKind::Depthwise, Mutation::PipelineOverflow, 16);

    let gemm = small_case(OperatorKind::Gemm);
    out.push(Fixture {
        name: "101-gemm-naive".into(),
        kind: OperatorKind::Gemm,
        target: TargetKind::Cpu,
        expect: Expectation::Pass,
        encoded: NodeConfig::naive(gemm.anchor_op()).encode(),
        note: "known-good sentinel: the naive gemm schedule".into(),
    });
    let conv = small_case(OperatorKind::Conv2d);
    let space = Space::new(&conv, TargetKind::Gpu);
    let mut rng = StdRng::seed_from_u64(17);
    out.push(Fixture {
        name: "102-conv2d-random".into(),
        kind: OperatorKind::Conv2d,
        target: TargetKind::Gpu,
        expect: Expectation::Pass,
        encoded: space.random_point(&mut rng).encode(),
        note: "known-good sentinel: seed-17 random GPU conv2d point".into(),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_round_trip_through_json() {
        for f in seed_corpus() {
            let back = Fixture::from_json(&f.to_json()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn seed_corpus_is_deterministic_and_replays_clean() {
        let a = seed_corpus();
        let b = seed_corpus();
        assert_eq!(a, b);
        assert!(a.len() >= 5);
        for f in &a {
            f.replay().unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn malformed_fixture_files_are_rejected() {
        assert!(Fixture::from_json("{").is_err());
        assert!(Fixture::from_json("{\"name\":\"x\"}").is_err());
        let good = seed_corpus()[0].to_json();
        let bad = good.replace("\"GMM\"", "\"nosuchop\"");
        assert!(Fixture::from_json(&bad).is_err());
    }

    #[test]
    fn replay_detects_a_wrong_expectation() {
        let mut f = seed_corpus().pop().unwrap();
        assert_eq!(f.expect, Expectation::Pass);
        f.expect = Expectation::Reject;
        assert!(f.replay().is_err());
    }
}
