//! Conformance subsystem for the FlexTensor reproduction: seeded schedule
//! fuzzing, differential oracles, and a shrinking regression corpus.
//!
//! The pipeline, end to end:
//!
//! 1. [`gen`] produces configs: valid points via the schedule space's
//!    divisor-aware sampler, and *near-invalid mutants* — valid configs
//!    with exactly one field corrupted.
//! 2. [`oracle`] checks every point against the differential tiers:
//!    structural (validate/encode/decode round-trips, split invariants,
//!    mutants rejected), semantic (scheduled interpreter vs.
//!    `interp::reference` on small shapes), model (CPU/GPU/FPGA costs
//!    finite, positive, and invariant to the number of eval workers),
//!    analyzer (`flextensor-analyze` static verdicts agree with the cost
//!    models and the interpreter), and region (interval certificates
//!    over factor boxes are sound for their concrete members).
//! 3. [`shrink`](mod@shrink) greedily minimizes any failing config per field until
//!    every remaining non-naive field is load-bearing.
//! 4. [`corpus`] stores shrunk cases as JSON fixtures that replay as
//!    ordinary `cargo test` (see `tests/corpus_replay.rs`).
//! 5. [`fuzz`](mod@fuzz) ties it together into a deterministic loop: one
//!    `(seed, iters)` pair names an exact workload with a byte-stable
//!    report — the `probe_conformance` binary exposes it on the CLI.
//!
//! See `docs/CONFORMANCE.md` for the operational guide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod oracle;
pub mod region_audit;
pub mod shrink;

pub use audit::{audit_corpus, audit_fixture, AuditEntry, AuditReport};
pub use corpus::{load_corpus, seed_corpus, Expectation, Fixture};
pub use fuzz::{fuzz, FuzzOptions, FuzzReport, Violation};
pub use gen::{mutate, Mutation, ALL_MUTATIONS};
pub use oracle::{
    check_analyzer, check_model, check_mutant_rejected, check_region, check_semantic,
    check_structural, check_worker_invariance, oracle_devices, Tier, SEMANTIC_TOL,
};
pub use region_audit::{region_audit, RegionAuditReport};
pub use shrink::shrink;
