//! The seeded fuzz loop: sample → corrupt → check every oracle tier,
//! shrinking anything that fails into a replayable fixture.
//!
//! Iterations walk the suite round-robin (operator kinds × targets in a
//! fixed order) while the *configs* come from a single seeded RNG, so one
//! `(seed, iters)` pair names an exact, reproducible workload and the
//! rendered report is byte-identical across runs.

use flextensor_explore::space::Space;
use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::{NodeConfig, TargetKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::corpus::{Expectation, Fixture};
use crate::gen::{mutate, ALL_MUTATIONS};
use crate::oracle::{
    check_analyzer, check_model, check_mutant_rejected, check_region, check_semantic,
    check_store_roundtrip, check_structural, check_worker_invariance, oracle_devices, Tier,
};
use crate::shrink::shrink;

/// What to fuzz and for how long.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// RNG seed; the whole run is a pure function of `(seed, iters)`.
    pub seed: u64,
    /// Number of sampled points (each is checked by every tier).
    pub iters: u64,
}

/// One oracle failure, already shrunk and packaged for the corpus.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which tier caught it.
    pub tier: Tier,
    /// The oracle's description of the failure (pre-shrink).
    pub message: String,
    /// The shrunk reproducer, ready to be written into the corpus.
    pub fixture: Fixture,
}

/// Counters and failures from one fuzz run. Contains no wall-clock data:
/// rendering it is deterministic for a fixed `(seed, iters)`.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Echo of the options that produced this report.
    pub seed: u64,
    /// Echo of the options that produced this report.
    pub iters: u64,
    /// Valid samples checked by the structural oracle.
    pub structural_checks: u64,
    /// Corrupted mutants checked for rejection.
    pub mutant_checks: u64,
    /// Scheduled-vs-reference executions.
    pub semantic_checks: u64,
    /// Cost-model sanity checks.
    pub model_checks: u64,
    /// Worker-invariance batches compared.
    pub invariance_checks: u64,
    /// Static-analyzer verdicts checked against the dynamic layers.
    pub analyzer_checks: u64,
    /// Region-analysis certificates checked against concrete member costs.
    pub region_checks: u64,
    /// Tuning-record store round-trips checked for fidelity.
    pub store_checks: u64,
    /// Every failure, in discovery order.
    pub violations: Vec<Violation>,
}

impl FuzzReport {
    /// Renders the report as stable, line-oriented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance fuzz: seed={} iters={}\n",
            self.seed, self.iters
        ));
        out.push_str(&format!(
            "  structural: {} samples, {} mutants\n",
            self.structural_checks, self.mutant_checks
        ));
        out.push_str(&format!(
            "  semantic:   {} executions\n",
            self.semantic_checks
        ));
        out.push_str(&format!(
            "  model:      {} points, {} invariance batches\n",
            self.model_checks, self.invariance_checks
        ));
        out.push_str(&format!(
            "  analyzer:   {} verdicts\n",
            self.analyzer_checks
        ));
        out.push_str(&format!(
            "  region:     {} certificates\n",
            self.region_checks
        ));
        out.push_str(&format!(
            "  store:      {} round-trips\n",
            self.store_checks
        ));
        if self.violations.is_empty() {
            out.push_str("  violations: none\n");
        } else {
            out.push_str(&format!("  violations: {}\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!(
                    "    [{}] {}: {}\n",
                    v.tier, v.fixture.name, v.message
                ));
            }
        }
        out
    }
}

/// How many sampled configs accumulate per `(kind, target)` slot before a
/// worker-invariance batch is compared. Must be ≥ 2 so the pool actually
/// spawns workers instead of evaluating inline.
const INVARIANCE_BATCH: usize = 6;

struct Slot {
    graph: flextensor_ir::graph::Graph,
    pending: Vec<NodeConfig>,
}

/// Runs the full differential fuzz loop.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    let kinds = OperatorKind::all();
    let targets = [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga];
    // Index-aligned with `targets`: the device model the analyzer tier
    // checks for the iteration's target.
    let devices = oracle_devices();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut report = FuzzReport {
        seed: opts.seed,
        iters: opts.iters,
        ..FuzzReport::default()
    };

    // One accumulation slot per (kind, target): invariance is a batch
    // property, so points are pooled until the batch is worth comparing.
    let mut slots: Vec<Slot> = kinds
        .iter()
        .flat_map(|&k| {
            targets.iter().map(move |_| Slot {
                graph: small_case(k),
                pending: Vec::new(),
            })
        })
        .collect();

    for i in 0..opts.iters {
        let ki = (i as usize) % kinds.len();
        let ti = ((i as usize) / kinds.len()) % targets.len();
        let kind = kinds[ki];
        let target = targets[ti];
        let slot = &mut slots[ki * targets.len() + ti];
        let space = Space::new(&slot.graph, target);
        let op = space.op().clone();
        let cfg = space.random_point(&mut rng);
        let case = format!("iter{i:05}-{}-{target}", kind.abbr().to_lowercase());

        // Tier 1a: the sampled point is structurally sound.
        report.structural_checks += 1;
        if let Err(message) = check_structural(&op, &cfg) {
            let shrunk = shrink(&op, &cfg, |c| check_structural(&op, c).is_err());
            report.violations.push(Violation {
                tier: Tier::Structural,
                message,
                fixture: Fixture {
                    name: case.clone(),
                    kind,
                    target,
                    expect: Expectation::Pass,
                    encoded: shrunk.encode(),
                    note: format!("shrunk structural violation, fuzz seed {}", opts.seed),
                },
            });
            continue; // downstream tiers assume a structurally sound point
        }

        // Tier 1b: a single-field corruption of the point is rejected.
        let mutation = ALL_MUTATIONS[(i as usize) % ALL_MUTATIONS.len()];
        if let Some(bad) = mutate(&cfg, &op, mutation) {
            report.mutant_checks += 1;
            if let Err(message) = check_mutant_rejected(&slot.graph, &bad) {
                let graph = &slot.graph;
                let shrunk = shrink(&op, &bad, |c| check_mutant_rejected(graph, c).is_err());
                report.violations.push(Violation {
                    tier: Tier::Structural,
                    message,
                    fixture: Fixture {
                        name: format!("{case}-{mutation}"),
                        kind,
                        target,
                        expect: Expectation::Reject,
                        encoded: shrunk.encode(),
                        note: format!("shrunk accepted {mutation} mutant, fuzz seed {}", opts.seed),
                    },
                });
            }
        }

        // Tier 2: the scheduled interpreter matches the reference.
        report.semantic_checks += 1;
        if let Err(message) = check_semantic(&slot.graph, &cfg, target, opts.seed) {
            let graph = &slot.graph;
            let shrunk = shrink(&op, &cfg, |c| {
                c.validate(&op).is_ok() && check_semantic(graph, c, target, opts.seed).is_err()
            });
            report.violations.push(Violation {
                tier: Tier::Semantic,
                message,
                fixture: Fixture {
                    name: case.clone(),
                    kind,
                    target,
                    expect: Expectation::Pass,
                    encoded: shrunk.encode(),
                    note: format!("shrunk semantic divergence, fuzz seed {}", opts.seed),
                },
            });
        }

        // Tier 3a: cost models produce sane numbers for the point.
        report.model_checks += 1;
        if let Err(message) = check_model(&slot.graph, &cfg) {
            let graph = &slot.graph;
            let shrunk = shrink(&op, &cfg, |c| {
                c.validate(&op).is_ok() && check_model(graph, c).is_err()
            });
            report.violations.push(Violation {
                tier: Tier::Model,
                message,
                fixture: Fixture {
                    name: case.clone(),
                    kind,
                    target,
                    expect: Expectation::Pass,
                    encoded: shrunk.encode(),
                    note: format!("shrunk model-sanity violation, fuzz seed {}", opts.seed),
                },
            });
        }

        // Tier 4: the static analyzer's verdict agrees with the cost
        // model and (when both deem the point legal) the interpreter.
        report.analyzer_checks += 1;
        let device = &devices[ti];
        if let Err(message) = check_analyzer(&slot.graph, &cfg, device, opts.seed) {
            let graph = &slot.graph;
            let shrunk = shrink(&op, &cfg, |c| {
                c.validate(&op).is_ok() && check_analyzer(graph, c, device, opts.seed).is_err()
            });
            report.violations.push(Violation {
                tier: Tier::Analyzer,
                message,
                fixture: Fixture {
                    name: case.clone(),
                    kind,
                    target,
                    expect: Expectation::Pass,
                    encoded: shrunk.encode(),
                    note: format!(
                        "shrunk analyzer-verdict divergence, fuzz seed {}",
                        opts.seed
                    ),
                },
            });
        }

        // Tier 6: region-analysis soundness. The interval verdict over
        // the join of the sampled point and two fresh draws must be
        // sound for every member's concrete cost: an `Illegal` region
        // holds no feasible member, and no member's cost escapes a
        // `Bounded` region's certified [lo, hi] — so branch-and-bound
        // pruning can never discard a config that beats the incumbent.
        report.region_checks += 1;
        let members = [
            cfg.clone(),
            space.random_point(&mut rng),
            space.random_point(&mut rng),
        ];
        if let Err(message) = check_region(&slot.graph, &members, device) {
            report.violations.push(Violation {
                tier: Tier::Region,
                message,
                fixture: Fixture {
                    name: format!("{case}-region"),
                    kind,
                    target,
                    expect: Expectation::Pass,
                    encoded: cfg.encode(),
                    note: format!("region soundness violation, fuzz seed {}", opts.seed),
                },
            });
        }

        // Tier 5 (sampled sparsely — each check does real file I/O): a
        // point's tuning record survives the persistence loop byte- and
        // bit-identically.
        if i % 16 == 0 {
            report.store_checks += 1;
            if let Err(message) = check_store_roundtrip(&slot.graph, &cfg) {
                report.violations.push(Violation {
                    tier: Tier::Store,
                    message,
                    fixture: Fixture {
                        name: format!("{case}-store"),
                        kind,
                        target,
                        expect: Expectation::Pass,
                        encoded: cfg.encode(),
                        note: format!("store round-trip infidelity, fuzz seed {}", opts.seed),
                    },
                });
            }
        }

        // Tier 3b: pooled worker-invariance batches.
        slot.pending.push(cfg);
        if slot.pending.len() >= INVARIANCE_BATCH {
            flush_invariance(&mut report, slot, kind, target, opts.seed, i);
        }
    }

    // Flush leftover batches so short runs still exercise the pool.
    for (si, slot) in slots.iter_mut().enumerate() {
        if slot.pending.len() >= 2 {
            let kind = kinds[si / targets.len()];
            let target = targets[si % targets.len()];
            flush_invariance(&mut report, slot, kind, target, opts.seed, opts.iters);
        }
    }
    report
}

fn flush_invariance(
    report: &mut FuzzReport,
    slot: &mut Slot,
    kind: OperatorKind,
    target: TargetKind,
    seed: u64,
    iter: u64,
) {
    report.invariance_checks += 1;
    if let Err(message) = check_worker_invariance(&slot.graph, &slot.pending) {
        // Batch failures are not per-config, so the fixture records the
        // first config of the batch un-shrunk; the message pinpoints the
        // offending index and device.
        report.violations.push(Violation {
            tier: Tier::Model,
            message,
            fixture: Fixture {
                name: format!(
                    "iter{iter:05}-{}-{target}-invariance",
                    kind.abbr().to_lowercase()
                ),
                kind,
                target,
                expect: Expectation::Pass,
                encoded: slot.pending[0].encode(),
                note: format!("worker-invariance batch failure, fuzz seed {seed}"),
            },
        });
    }
    slot.pending.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic_for_a_fixed_seed() {
        let opts = FuzzOptions { seed: 7, iters: 40 };
        let a = fuzz(&opts).render();
        let b = fuzz(&opts).render();
        assert_eq!(a, b);
        assert!(a.contains("seed=7"));
    }

    #[test]
    fn different_seeds_change_the_workload() {
        // Same counters (the schedule is seed-independent) but the render
        // must reflect the requested seed.
        let a = fuzz(&FuzzOptions { seed: 1, iters: 15 });
        let b = fuzz(&FuzzOptions { seed: 2, iters: 15 });
        assert_eq!(a.structural_checks, b.structural_checks);
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn a_short_run_touches_every_tier_and_finds_nothing() {
        let r = fuzz(&FuzzOptions { seed: 3, iters: 45 });
        assert_eq!(r.structural_checks, 45);
        assert!(r.mutant_checks > 0);
        assert_eq!(r.semantic_checks, 45);
        assert_eq!(r.model_checks, 45);
        assert_eq!(r.analyzer_checks, 45);
        assert_eq!(r.region_checks, 45);
        assert!(r.invariance_checks > 0, "leftover batches must flush");
        assert!(
            r.violations.is_empty(),
            "unexpected violations:\n{}",
            r.render()
        );
    }
}
