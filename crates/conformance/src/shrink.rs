//! Greedy per-field minimization of failing configs.
//!
//! Given a config and a predicate "this still fails", the shrinker walks a
//! fixed list of simplification moves — resetting whole fields to their
//! naive value, then peeling split factors level by level — accepting any
//! move that keeps the predicate true, and repeating until a full pass
//! changes nothing. The result is a minimal reproducer: every remaining
//! non-naive field is load-bearing for the failure.
//!
//! The move order is fixed and the process is fully deterministic, so the
//! same failure always shrinks to the same fixture.

use flextensor_ir::graph::ComputeOp;
use flextensor_schedule::config::NodeConfig;

/// Smallest prime factor of `n` (`n` ≥ 2).
fn smallest_prime_factor(n: i64) -> i64 {
    if n % 2 == 0 {
        return 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n % d == 0 {
            return d;
        }
        d += 2;
    }
    n
}

/// One simplification attempt: returns the simplified config, or `None`
/// when the move does not change anything.
fn moves(op: &ComputeOp, cfg: &NodeConfig) -> Vec<NodeConfig> {
    let naive = NodeConfig::naive(op);
    let mut out = Vec::new();
    let mut push_if_new = |c: NodeConfig| {
        if &c != cfg {
            out.push(c);
        }
    };

    // Whole-field resets, cheapest description first.
    for (i, f) in naive.spatial_splits.iter().enumerate() {
        if i < cfg.spatial_splits.len() {
            let mut c = cfg.clone();
            c.spatial_splits[i] = f.clone();
            push_if_new(c);
        }
    }
    for (i, f) in naive.reduce_splits.iter().enumerate() {
        if i < cfg.reduce_splits.len() {
            let mut c = cfg.clone();
            c.reduce_splits[i] = f.clone();
            push_if_new(c);
        }
    }
    {
        let mut c = cfg.clone();
        c.reorder = naive.reorder.clone();
        push_if_new(c);
    }
    for (field, value) in [
        ("fuse", 0usize),
        ("unroll", 0),
        ("vectorize", 0),
        ("cache", 0),
        ("inline", 0),
        ("partition", 0),
        ("pipeline", 0),
    ] {
        let mut c = cfg.clone();
        match field {
            "fuse" => c.fuse_outer = naive.fuse_outer,
            "unroll" => c.unroll = false,
            "vectorize" => c.vectorize = false,
            "cache" => c.cache_shared = false,
            "inline" => c.inline_data = true,
            "partition" => c.fpga_partition = 1,
            "pipeline" => c.fpga_pipeline = 1,
            _ => unreachable!(),
        }
        let _ = value;
        push_if_new(c);
    }

    // Finer-grained: move one prime factor of any non-innermost level back
    // to the innermost level (towards the naive split), per axis.
    for (i, f) in cfg.spatial_splits.iter().enumerate() {
        let parts = f.len();
        for (level, &factor) in f.iter().enumerate().take(parts.saturating_sub(1)) {
            if factor > 1 {
                let mut c = cfg.clone();
                let p = smallest_prime_factor(factor);
                c.spatial_splits[i][level] /= p;
                c.spatial_splits[i][parts - 1] *= p;
                push_if_new(c);
            }
        }
    }
    for (i, f) in cfg.reduce_splits.iter().enumerate() {
        let parts = f.len();
        for (level, &factor) in f.iter().enumerate().take(parts.saturating_sub(1)) {
            if factor > 1 {
                let mut c = cfg.clone();
                let p = smallest_prime_factor(factor);
                c.reduce_splits[i][level] /= p;
                c.reduce_splits[i][parts - 1] *= p;
                push_if_new(c);
            }
        }
    }
    out
}

/// Greedily minimizes `cfg` while `still_fails` stays true.
///
/// `still_fails` must be true for `cfg` itself (the caller found a failing
/// case); the returned config also satisfies it. The predicate is invoked
/// O(fields × passes) times, so it should be cheap — for oracle failures,
/// pass a closure that re-runs only the violated oracle.
pub fn shrink(
    op: &ComputeOp,
    cfg: &NodeConfig,
    still_fails: impl Fn(&NodeConfig) -> bool,
) -> NodeConfig {
    debug_assert!(still_fails(cfg), "shrink called on a non-failing config");
    let mut cur = cfg.clone();
    loop {
        let mut progressed = false;
        for cand in moves(op, &cur) {
            if still_fails(&cand) {
                cur = cand;
                progressed = true;
                break; // restart the pass from the simplified config
            }
        }
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{mutate, Mutation};
    use flextensor_ir::ops;

    #[test]
    fn shrinking_a_mutant_keeps_only_the_corruption() {
        let g = ops::gemm(8, 6, 4);
        let op = g.root_op().clone();
        // Busy base config: tiling, reorder, flags all non-naive.
        let mut base = NodeConfig::naive(&op);
        base.spatial_splits = vec![vec![2, 2, 2, 1], vec![1, 3, 2, 1]];
        base.reduce_splits = vec![vec![2, 2, 1]];
        base.reorder = vec![1, 0];
        base.unroll = true;
        base.cache_shared = true;
        base.fpga_partition = 8;
        base.validate(&op).unwrap();
        let bad = mutate(&base, &op, Mutation::FuseZero).unwrap();
        let shrunk = shrink(&op, &bad, |c| c.validate(&op).is_err());
        // The corrupted field survives; everything else collapses to naive.
        assert_eq!(shrunk.fuse_outer, 0);
        let naive = NodeConfig::naive(&op);
        assert_eq!(shrunk.spatial_splits, naive.spatial_splits);
        assert_eq!(shrunk.reduce_splits, naive.reduce_splits);
        assert_eq!(shrunk.reorder, naive.reorder);
        assert!(!shrunk.unroll && !shrunk.cache_shared);
        assert_eq!(shrunk.fpga_partition, 1);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let g = ops::gemm(8, 6, 4);
        let op = g.root_op().clone();
        let mut base = NodeConfig::naive(&op);
        base.spatial_splits = vec![vec![4, 2, 1, 1], vec![2, 1, 3, 1]];
        base.unroll = true;
        let bad = mutate(&base, &op, Mutation::SpatialFactorBump).unwrap();
        let a = shrink(&op, &bad, |c| c.validate(&op).is_err());
        let b = shrink(&op, &bad, |c| c.validate(&op).is_err());
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_preserves_the_predicate() {
        let g = ops::gemm(8, 6, 4);
        let op = g.root_op().clone();
        let mut base = NodeConfig::naive(&op);
        base.spatial_splits = vec![vec![2, 2, 2, 1], vec![2, 3, 1, 1]];
        let bad = mutate(&base, &op, Mutation::ReorderDuplicate).unwrap();
        let shrunk = shrink(&op, &bad, |c| c.validate(&op).is_err());
        assert!(shrunk.validate(&op).is_err());
    }
}
