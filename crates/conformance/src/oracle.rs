//! The differential-oracle tiers every sampled point is checked
//! against.
//!
//! * **Structural** — the config round-trips through
//!   `encode`/`decode`, validates, and satisfies the split invariants
//!   (per-axis factor products equal trip counts); deliberately corrupted
//!   mutants are *rejected*, not silently accepted.
//! * **Semantic** — the lowered kernel, executed by the loop-nest
//!   interpreter, matches `interp::reference` on the small conformance
//!   shapes (to the repo-wide 1e-9 tolerance; reduce splits legitimately
//!   reassociate floating-point sums, so exact bit equality is not the
//!   contract).
//! * **Model** — the CPU/GPU/FPGA analytical costs are finite and
//!   positive whenever the models deem a point feasible, and identical
//!   whether evaluated serially or through a multi-worker [`EvalPool`].
//! * **Analyzer** — `flextensor-analyze`'s static verdict agrees with the
//!   dynamic layers: an `Error`-level report implies the cost model
//!   rejects the schedule, and an analyzer-clean, model-feasible schedule
//!   must execute without diverging from the reference.
//! * **Region** — the abstract interpretation over a factor box is sound
//!   for its concrete members: an `Illegal` region holds no feasible
//!   config, and no member's cost escapes a `Bounded` region's certified
//!   `[lo, hi]`.

use flextensor_explore::pool::EvalPool;
use flextensor_interp::machine::check_against_reference;
use flextensor_interp::reference::random_inputs;
use flextensor_ir::graph::{ComputeOp, Graph};
use flextensor_schedule::config::{NodeConfig, TargetKind, REDUCE_PARTS, SPATIAL_PARTS};
use flextensor_schedule::lower::lower;
use flextensor_sim::model::Evaluator;
use flextensor_sim::spec::{v100, vu9p, xeon_e5_2699_v4, Device};

/// Maximum `|scheduled - reference|` the semantic oracle tolerates — the
/// same tolerance the repo's correctness tests use.
pub const SEMANTIC_TOL: f64 = 1e-9;

/// Which oracle tier a violation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Validate/encode/decode and invariant checks.
    Structural,
    /// Scheduled-vs-reference execution.
    Semantic,
    /// Analytical cost-model sanity.
    Model,
    /// Static-analyzer verdicts vs. the cost models and the interpreter.
    Analyzer,
    /// Tuning-record persistence fidelity (serialize → store → recover).
    Store,
    /// Region-analysis soundness: interval verdicts over a factor box
    /// vs. the concrete costs of its sampled members.
    Region,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Structural => "structural",
            Tier::Semantic => "semantic",
            Tier::Model => "model",
            Tier::Analyzer => "analyzer",
            Tier::Store => "store",
            Tier::Region => "region",
        })
    }
}

/// The three device models the model oracle runs, one per target.
pub fn oracle_devices() -> [Device; 3] {
    [
        Device::Cpu(xeon_e5_2699_v4()),
        Device::Gpu(v100()),
        Device::Fpga(vu9p()),
    ]
}

/// Structural oracle for a config the generator believes valid.
///
/// # Errors
///
/// Returns a description of the first violated check.
pub fn check_structural(op: &ComputeOp, cfg: &NodeConfig) -> Result<(), String> {
    cfg.validate(op)
        .map_err(|e| format!("valid sample rejected by validator: {e}"))?;

    // Split products are the trip counts: each axis's factors must
    // reconstruct exactly its extent (validate checks this too; asserting
    // it here keeps the oracle independent of validator internals).
    for (axis, f) in op.spatial.iter().zip(&cfg.spatial_splits) {
        if f.len() != SPATIAL_PARTS || f.iter().product::<i64>() != axis.extent {
            return Err(format!(
                "spatial axis {}: factors {f:?} do not tile extent {}",
                axis.name, axis.extent
            ));
        }
    }
    for (axis, f) in op.reduce.iter().zip(&cfg.reduce_splits) {
        if f.len() != REDUCE_PARTS || f.iter().product::<i64>() != axis.extent {
            return Err(format!(
                "reduce axis {}: factors {f:?} do not tile extent {}",
                axis.name, axis.extent
            ));
        }
    }

    // encode → decode must be the identity, and the encoding must have the
    // documented fixed length.
    let v = cfg.encode();
    let expect_len =
        op.spatial.len() * SPATIAL_PARTS + op.reduce.len() * REDUCE_PARTS + op.spatial.len() + 7;
    if v.len() != expect_len {
        return Err(format!(
            "encoding length {} != documented {expect_len}",
            v.len()
        ));
    }
    let back = NodeConfig::decode(op, &v).map_err(|e| format!("decode of encode failed: {e}"))?;
    if &back != cfg {
        return Err(format!(
            "encode/decode round-trip changed the config: {v:?} -> {:?}",
            back.encode()
        ));
    }
    Ok(())
}

/// Structural oracle for a deliberately corrupted mutant: the config must
/// be *rejected* at every layer — by the validator directly, by lowering
/// (which revalidates), and (when its encoding survives decoding at all)
/// by the validator after a decode round-trip.
///
/// # Errors
///
/// Returns a description when any layer silently accepts the mutant.
pub fn check_mutant_rejected(graph: &Graph, mutant: &NodeConfig) -> Result<(), String> {
    let op = graph.anchor_op();
    if mutant.validate(op).is_ok() {
        return Err("mutant accepted by validator".into());
    }
    for target in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
        if lower(graph, mutant, target).is_ok() {
            return Err(format!("mutant lowered successfully for {target}"));
        }
    }
    // If the mutant's encoding decodes, the decoded config must still be
    // rejected; a decode error is an equally acceptable rejection.
    if let Ok(back) = NodeConfig::decode(op, &mutant.encode()) {
        if back.validate(op).is_ok() {
            return Err("mutant round-tripped into an accepted config".into());
        }
    }
    Ok(())
}

/// Semantic oracle: lowers `cfg` for `target` and compares the scheduled
/// interpreter against the reference evaluator on deterministic random
/// inputs derived from `seed`.
///
/// # Errors
///
/// Returns a description when lowering fails for a valid config, execution
/// errors, or outputs diverge beyond [`SEMANTIC_TOL`].
pub fn check_semantic(
    graph: &Graph,
    cfg: &NodeConfig,
    target: TargetKind,
    seed: u64,
) -> Result<(), String> {
    let kernel = lower(graph, cfg, target)
        .map_err(|e| format!("valid config failed to lower for {target}: {e}"))?;
    let inputs = random_inputs(graph, seed);
    let diff = check_against_reference(graph, &kernel, &inputs)
        .map_err(|e| format!("{target} execution error: {e}"))?;
    if diff.is_nan() || diff > SEMANTIC_TOL {
        return Err(format!(
            "{target}: scheduled output diverges from reference by {diff:e}"
        ));
    }
    Ok(())
}

/// Model oracle, single point: for each device model, the cost is either
/// `None` (infeasible — allowed) or finite and strictly positive with a
/// finite throughput.
///
/// # Errors
///
/// Returns a description naming the offending device and quantity.
pub fn check_model(graph: &Graph, cfg: &NodeConfig) -> Result<(), String> {
    let mut any_feasible = false;
    for device in oracle_devices() {
        let target = device.target();
        if let Some(cost) = Evaluator::new(device).evaluate(graph, cfg) {
            any_feasible = true;
            if !cost.seconds.is_finite() || cost.seconds <= 0.0 {
                return Err(format!("{target}: non-positive cost {}", cost.seconds));
            }
            // Zero-FLOP ops (shift is pure data movement) legitimately
            // report zero throughput; anything else must be positive.
            if !cost.gflops().is_finite() || (cost.flops > 0 && cost.gflops() <= 0.0) {
                return Err(format!("{target}: bad throughput {}", cost.gflops()));
            }
        }
    }
    // The CPU model has no feasibility constraints that a *valid* split
    // can violate, so a point infeasible everywhere indicates a model
    // regression, not a genuinely impossible schedule.
    if !any_feasible {
        return Err("point infeasible on every device model".into());
    }
    Ok(())
}

/// Analyzer oracle: the static analyzer's verdict for `cfg` on `device`
/// must agree with the dynamic layers it abstracts.
///
/// * An `Error`-level report claims the schedule is illegal on the
///   device, so the cost model must reject it (`evaluate` → `None`);
///   the converse is not required — the analyzer may miss
///   infeasibilities, but must never cry wolf.
/// * A clean report on a model-feasible schedule claims legality, so the
///   scheduled interpreter must match the reference (within
///   [`SEMANTIC_TOL`]).
///
/// # Errors
///
/// Returns a description of the disagreement, naming the analyzer rule
/// when the static verdict was the wrong one.
pub fn check_analyzer(
    graph: &Graph,
    cfg: &NodeConfig,
    device: &Device,
    seed: u64,
) -> Result<(), String> {
    let target = device.target();
    let report = flextensor_analyze::analyze_schedule(graph, cfg, device);
    let cost = Evaluator::new(device.clone()).evaluate(graph, cfg);
    let first_error = report
        .diagnostics
        .iter()
        .find(|d| d.severity == flextensor_analyze::Severity::Error);
    match (first_error, cost) {
        (Some(d), Some(c)) => Err(format!(
            "{target}: analyzer claims illegal ({} at {}) but the cost model accepts the \
             schedule at {:.3e}s",
            d.rule, d.span, c.seconds
        )),
        (None, Some(_)) => check_semantic(graph, cfg, target, seed)
            .map_err(|e| format!("analyzer-clean schedule misbehaves: {e}")),
        // Error + infeasible: static and dynamic agree. Clean +
        // infeasible: allowed — the gate is sound, not complete.
        _ => Ok(()),
    }
}

/// Region oracle: the abstract interpretation's verdict over a factor
/// box must be sound with respect to every concrete member.
///
/// The region is the join of all `members`, so each member belongs by
/// construction. The oracle then checks the two soundness claims the
/// region gate and the certification sweep rely on:
///
/// * [`RegionVerdict::Illegal`](flextensor_analyze::RegionVerdict)
///   certifies every member is statically illegal, so the cost model
///   must reject (`evaluate` → `None`) each one.
/// * [`RegionVerdict::Bounded`](flextensor_analyze::RegionVerdict)
///   `{lo, hi}` certifies every member with a concrete cost `s` has
///   `lo <= s <= hi` — in particular, branch-and-bound pruning
///   (`lo > incumbent`) can never discard a region holding a config
///   that beats the incumbent.
///
/// # Errors
///
/// Returns a description of the first member that falsifies the
/// region's certificate.
pub fn check_region(graph: &Graph, members: &[NodeConfig], device: &Device) -> Result<(), String> {
    use flextensor_analyze::{analyze_region, Region, RegionVerdict};
    use flextensor_schedule::template::LoweredTemplate;

    let target = device.target();
    let Some(region) = Region::join(members) else {
        return Ok(()); // empty or shape-mismatched sample: nothing to certify
    };
    for (i, m) in members.iter().enumerate() {
        if !region.contains(m) {
            return Err(format!(
                "{target}: member {i} escapes the join of its own sample"
            ));
        }
    }
    let evaluator = Evaluator::new(device.clone());
    let tpl = LoweredTemplate::new(graph, target);
    match analyze_region(&tpl, &region, &evaluator) {
        RegionVerdict::Illegal(d) => {
            for (i, m) in members.iter().enumerate() {
                if let Some(c) = evaluator.evaluate(graph, m) {
                    return Err(format!(
                        "{target}: region certified illegal ({} at {}) yet member {i} \
                         costs {:.3e}s",
                        d.rule, d.span, c.seconds
                    ));
                }
            }
        }
        RegionVerdict::Bounded { lo, hi } => {
            let mut best = f64::INFINITY;
            for (i, m) in members.iter().enumerate() {
                if let Some(c) = evaluator.evaluate(graph, m) {
                    if c.seconds < lo || c.seconds > hi {
                        return Err(format!(
                            "{target}: member {i} cost {:.6e}s escapes certified bounds \
                             [{lo:.6e}, {hi:.6e}]",
                            c.seconds
                        ));
                    }
                    best = best.min(c.seconds);
                }
            }
            // Redundant with the per-member check, but states the
            // branch-and-bound property in its own terms: a region
            // containing a member of cost `best` must never satisfy the
            // prune criterion against an incumbent at least as slow.
            if best.is_finite() && lo > best {
                return Err(format!(
                    "{target}: certified lower bound {lo:.6e} exceeds a member's \
                     concrete cost {best:.6e} — an unsound prune"
                ));
            }
        }
    }
    Ok(())
}

/// Model oracle, batch half: evaluating `configs` through a serial pool
/// and a multi-worker pool must produce identical outcomes (the
/// `eval_workers` invariance the parallel back-end guarantees).
///
/// # Errors
///
/// Returns the index and device where serial and parallel disagree.
pub fn check_worker_invariance(graph: &Graph, configs: &[NodeConfig]) -> Result<(), String> {
    if configs.is_empty() {
        return Ok(());
    }
    for device in oracle_devices() {
        let target = device.target();
        let evaluator = Evaluator::new(device);
        let serial = EvalPool::new(graph, &evaluator, 1, 1 << 14).evaluate_batch(configs);
        let parallel = EvalPool::new(graph, &evaluator, 4, 1 << 14).evaluate_batch(configs);
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            if s.cost != p.cost {
                return Err(format!(
                    "{target}: candidate {i} cost differs between 1 and 4 workers: {:?} vs {:?}",
                    s.cost, p.cost
                ));
            }
        }
    }
    Ok(())
}

/// Store oracle: a schedule's tuning record must survive the persistence
/// loop with full fidelity. For every device that deems `cfg` feasible,
/// the record is serialized, parsed back, written through a real
/// single-shard [`TuneDb`](flextensor_tunedb::TuneDb), recovered on
/// reopen, and the recovered config re-evaluated — every hop must be
/// byte- (for the JSONL line) and bit- (for the cost) identical, with no
/// lines dropped by recovery.
///
/// # Errors
///
/// Returns a description of the first hop that loses information.
pub fn check_store_roundtrip(graph: &Graph, cfg: &NodeConfig) -> Result<(), String> {
    use flextensor_tunedb::{testutil, TuneDb, TuneKey, TuneRecord};

    for device in oracle_devices() {
        let target = device.target();
        let evaluator = Evaluator::new(device.clone());
        let Some(cost) = evaluator.evaluate(graph, cfg) else {
            continue;
        };
        let mut shape: Vec<i64> = graph.anchor_op().spatial.iter().map(|a| a.extent).collect();
        shape.extend(graph.anchor_op().reduce.iter().map(|a| a.extent));
        let key = TuneKey::new(
            graph.name.split('_').next().unwrap_or("op"),
            shape,
            device.name(),
        );
        let record = TuneRecord {
            key: key.clone(),
            config: cfg.encode(),
            seconds: cost.seconds,
            seed: 7,
            trials: 1,
            commit: "oracle".to_string(),
        };
        let line = record.to_jsonl();
        let parsed = TuneRecord::from_jsonl(&line)
            .map_err(|e| format!("{target}: serialized record does not parse: {e}"))?;
        if parsed.to_jsonl() != line {
            return Err(format!("{target}: parse→serialize is not byte-identical"));
        }
        let dir = testutil::temp_dir("oracle-roundtrip");
        let (db, _) = TuneDb::open_with_shards(&dir, 1)
            .map_err(|e| format!("{target}: cannot open store: {e}"))?;
        db.put(record)
            .map_err(|e| format!("{target}: put failed: {e}"))?;
        drop(db);
        let (db, report) = TuneDb::open_with_shards(&dir, 1)
            .map_err(|e| format!("{target}: cannot reopen store: {e}"))?;
        if report.lines_dropped != 0 {
            return Err(format!(
                "{target}: recovery dropped {} line(s) from an uncorrupted store",
                report.lines_dropped
            ));
        }
        let recovered = db
            .peek(&key)
            .ok_or_else(|| format!("{target}: record lost across reopen"))?;
        let _ = std::fs::remove_dir_all(&dir);
        if recovered.to_jsonl() != line {
            return Err(format!("{target}: recovered record is not byte-identical"));
        }
        let decoded = NodeConfig::decode(graph.root_op(), &recovered.config)
            .map_err(|e| format!("{target}: recovered config does not decode: {e}"))?;
        let replayed = evaluator
            .evaluate(graph, &decoded)
            .ok_or_else(|| format!("{target}: recovered config became infeasible"))?;
        if replayed.seconds.to_bits() != cost.seconds.to_bits() {
            return Err(format!(
                "{target}: replayed cost {} != recorded cost {}",
                replayed.seconds, cost.seconds
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{mutate, ALL_MUTATIONS};
    use flextensor_explore::space::Space;
    use flextensor_ir::suite::{small_case, OperatorKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn naive_configs_pass_all_tiers() {
        let g = small_case(OperatorKind::Gemm);
        let cfg = NodeConfig::naive(g.anchor_op());
        check_structural(g.anchor_op(), &cfg).unwrap();
        for t in [TargetKind::Cpu, TargetKind::Gpu, TargetKind::Fpga] {
            check_semantic(&g, &cfg, t, 7).unwrap();
        }
        check_model(&g, &cfg).unwrap();
        check_store_roundtrip(&g, &cfg).unwrap();
    }

    #[test]
    fn store_roundtrip_holds_for_random_points() {
        let g = small_case(OperatorKind::Gemm);
        let space = Space::new(&g, TargetKind::Gpu);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..4 {
            check_store_roundtrip(&g, &space.random_point(&mut rng)).unwrap();
        }
    }

    #[test]
    fn random_points_pass_structural_and_model() {
        let g = small_case(OperatorKind::Conv2d);
        let space = Space::new(&g, TargetKind::Gpu);
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<_> = (0..6).map(|_| space.random_point(&mut rng)).collect();
        for p in &pts {
            check_structural(space.op(), p).unwrap();
            check_model(&g, p).unwrap();
        }
        check_worker_invariance(&g, &pts).unwrap();
    }

    #[test]
    fn mutants_are_rejected_for_every_kind() {
        for kind in OperatorKind::all() {
            let g = small_case(kind);
            let op = g.anchor_op();
            let base = NodeConfig::naive(op);
            for &m in ALL_MUTATIONS {
                if let Some(bad) = mutate(&base, op, m) {
                    check_mutant_rejected(&g, &bad)
                        .unwrap_or_else(|e| panic!("{}: {m}: {e}", g.name));
                }
            }
        }
    }

    #[test]
    fn analyzer_oracle_agrees_on_naive_and_random_points() {
        for kind in [OperatorKind::Gemm, OperatorKind::Conv2d] {
            let g = small_case(kind);
            let cfg = NodeConfig::naive(g.anchor_op());
            for d in oracle_devices() {
                check_analyzer(&g, &cfg, &d, 7)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", g.name, d.name()));
            }
            let space = Space::new(&g, TargetKind::Gpu);
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..8 {
                let p = space.random_point(&mut rng);
                for d in oracle_devices() {
                    check_analyzer(&g, &p, &d, 9)
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", g.name, d.name()));
                }
            }
        }
    }

    #[test]
    fn region_oracle_holds_on_naive_and_random_samples() {
        for kind in [OperatorKind::Gemm, OperatorKind::Conv2d] {
            let g = small_case(kind);
            let naive = NodeConfig::naive(g.anchor_op());
            for d in oracle_devices() {
                check_region(&g, std::slice::from_ref(&naive), &d)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", g.name, d.name()));
            }
            let space = Space::new(&g, TargetKind::Gpu);
            let mut rng = StdRng::seed_from_u64(17);
            for _ in 0..6 {
                let members: Vec<_> = (0..3).map(|_| space.random_point(&mut rng)).collect();
                for d in oracle_devices() {
                    check_region(&g, &members, &d)
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", g.name, d.name()));
                }
            }
        }
    }

    #[test]
    fn structural_oracle_catches_a_corrupted_config() {
        let g = small_case(OperatorKind::Gemm);
        let op = g.anchor_op();
        let mut cfg = NodeConfig::naive(op);
        cfg.spatial_splits[0][0] = 5; // product mismatch
        assert!(check_structural(op, &cfg).is_err());
    }
}
