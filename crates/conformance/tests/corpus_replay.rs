//! Replays the committed regression corpus as ordinary `cargo test`.
//!
//! Every fixture under `corpus/` is a shrunk reproducer (or a known-good
//! sentinel) with a recorded expectation; this test fails loudly if the
//! current implementation disagrees with any of them. To add a case, drop
//! a JSON file in `corpus/` — no code change needed.

use std::path::Path;

use flextensor_conformance::corpus::{load_corpus, Expectation};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

#[test]
fn every_corpus_fixture_replays_clean() {
    let fixtures = load_corpus(corpus_dir()).expect("corpus loads");
    assert!(
        fixtures.len() >= 5,
        "expected at least 5 committed fixtures, found {}",
        fixtures.len()
    );
    let mut failures = Vec::new();
    for f in &fixtures {
        if let Err(e) = f.replay() {
            failures.push(format!("{} ({}): {e}", f.name, f.expect.name()));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_covers_both_expectations() {
    let fixtures = load_corpus(corpus_dir()).expect("corpus loads");
    let rejects = fixtures
        .iter()
        .filter(|f| f.expect == Expectation::Reject)
        .count();
    let passes = fixtures.len() - rejects;
    assert!(
        rejects >= 4,
        "want several shrunk reject reproducers, found {rejects}"
    );
    assert!(passes >= 1, "want at least one known-good sentinel");
}

#[test]
fn fixture_names_match_their_file_stems() {
    // load_corpus sorts by file name; the embedded names must agree so a
    // report line can be traced straight back to its file.
    let fixtures = load_corpus(corpus_dir()).expect("corpus loads");
    for f in &fixtures {
        let path = corpus_dir().join(format!("{}.json", f.name));
        assert!(path.is_file(), "fixture `{}` has no matching file", f.name);
    }
}
