//! Golden-report drift check for the region-analysis audit.
//!
//! `region-golden.txt` is the committed output of `probe_analyze
//! region`. Any change to the region bounds, gate counters, or sweep
//! counters over the audit workloads — a transfer-function change, a
//! split-policy change, a new prune firing — shows up as a diff here and
//! must be reviewed (and the golden regenerated) rather than slipping
//! through silently. CI runs the same comparison via the binary.

use flextensor_conformance::region_audit;

const GOLDEN: &str = include_str!("../region-golden.txt");

#[test]
fn region_audit_matches_the_committed_golden_report() {
    let report = region_audit();
    assert_eq!(
        report.violations, 0,
        "certified bound excluded a realized best:\n{}",
        report.text
    );
    assert_eq!(
        report.text, GOLDEN,
        "region audit drifted from crates/conformance/region-golden.txt; \
         regenerate with `cargo run -p flextensor-bench --bin probe_analyze -- region` \
         and review the diff"
    );
}
