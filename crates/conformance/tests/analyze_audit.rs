//! Golden-report drift check for the static-analyzer corpus audit.
//!
//! `analyze-golden.txt` is the committed output of
//! `probe_analyze corpus`. Any change to analyzer verdicts over the
//! committed fixtures — a new rule firing, a severity change, a message
//! rewording — shows up as a diff here and must be reviewed (and the
//! golden regenerated) rather than slipping through silently. CI runs the
//! same comparison via the binary.

use std::path::Path;

use flextensor_conformance::audit::audit_corpus;
use flextensor_conformance::corpus::load_corpus;

const GOLDEN: &str = include_str!("../analyze-golden.txt");

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

#[test]
fn corpus_audit_matches_the_committed_golden_report() {
    let fixtures = load_corpus(corpus_dir()).expect("committed corpus loads");
    let report = audit_corpus(&fixtures);
    assert_eq!(report.mismatches(), 0, "{}", report.render_text());
    assert_eq!(
        report.render_text(),
        GOLDEN,
        "analyzer verdicts drifted from crates/conformance/analyze-golden.txt; \
         regenerate with `cargo run -p flextensor-bench --bin probe_analyze -- corpus` \
         and review the diff"
    );
}

#[test]
fn audit_json_is_well_formed_and_complete() {
    let fixtures = load_corpus(corpus_dir()).expect("committed corpus loads");
    let json = audit_corpus(&fixtures).to_json();
    let v = flextensor_telemetry::json::parse(&json).expect("audit JSON parses");
    assert_eq!(v.get_u64("fixtures").unwrap() as usize, fixtures.len());
    assert_eq!(v.get_u64("mismatches").unwrap(), 0);
}
