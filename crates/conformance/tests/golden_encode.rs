//! Golden snapshot of `NodeConfig::naive(...).encode()` for every suite
//! operator, pinned against the committed `golden/naive_encode.txt`.
//!
//! The encoding is the repo's exchange format for schedule points
//! (telemetry traces, the regression corpus, the autotvm bridge), so its
//! layout must never drift silently. If a change is *intentional*, rerun
//! with `UPDATE_GOLDEN=1` and commit the new snapshot together with the
//! migration notes.

use std::path::Path;

use flextensor_ir::suite::{small_case, OperatorKind};
use flextensor_schedule::config::NodeConfig;

fn golden_path() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/golden/naive_encode.txt"
    ))
}

/// One line per operator: `ABBR: v0 v1 v2 ...` (naive config of the
/// conformance small case), in `OperatorKind::all()` order.
fn render_current() -> String {
    let mut out = String::new();
    for kind in OperatorKind::all() {
        let g = small_case(kind);
        let encoded = NodeConfig::naive(g.anchor_op()).encode();
        out.push_str(kind.abbr());
        out.push(':');
        for v in encoded {
            out.push(' ');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

#[test]
fn naive_encodings_match_the_committed_snapshot() {
    let current = render_current();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), &current).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(golden_path()).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            golden_path().display()
        )
    });
    assert_eq!(
        current, committed,
        "naive encode() drifted from the committed snapshot; if intentional, \
         rerun with UPDATE_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn snapshot_covers_every_operator_once() {
    let committed = std::fs::read_to_string(golden_path()).expect("snapshot committed");
    let lines: Vec<&str> = committed.lines().collect();
    assert_eq!(lines.len(), OperatorKind::all().len());
    for (line, kind) in lines.iter().zip(OperatorKind::all()) {
        assert!(
            line.starts_with(kind.abbr()),
            "line `{line}` out of order; expected {}",
            kind.abbr()
        );
    }
}

#[test]
fn snapshot_lengths_match_the_documented_formula() {
    use flextensor_schedule::config::{REDUCE_PARTS, SPATIAL_PARTS};
    let committed = std::fs::read_to_string(golden_path()).expect("snapshot committed");
    for (line, kind) in committed.lines().zip(OperatorKind::all()) {
        let n = line.split_whitespace().count() - 1; // minus the `ABBR:` cell
        let g = small_case(kind);
        let op = g.anchor_op();
        let expect = op.spatial.len() * SPATIAL_PARTS
            + op.reduce.len() * REDUCE_PARTS
            + op.spatial.len()
            + 7;
        assert_eq!(
            n,
            expect,
            "{}: {n} values, formula says {expect}",
            kind.abbr()
        );
    }
}
